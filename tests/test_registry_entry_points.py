"""Entry-point discovery: third-party registrations without explicit imports.

A distribution advertising ``repro.protocols`` entry points gets its
protocols/predicates/schedulers/simulators loaded into the registries of
:mod:`repro.protocols.registry` at import time.  These tests build a stub
distribution in-process: a module injected into ``sys.modules`` plus real
``importlib.metadata.EntryPoint`` objects pointing into it, fed through
:func:`load_entry_points` both directly and via a monkeypatched
``entry_points()`` discovery call.
"""

import importlib.metadata
import sys
import types

import pytest

from repro.engine.experiment import repeat_experiment
from repro.protocols import registry
from repro.protocols.catalog.epidemic import EpidemicProtocol
from repro.scheduling.scheduler import RoundRobinScheduler


@pytest.fixture
def stub_distribution(monkeypatch):
    """A fake installed package registering one of everything, plus a broken
    entry point; yields the module so tests can inspect its call count."""
    module = types.ModuleType("repro_thirdparty_stub")
    module.register_calls = 0

    def register():
        module.register_calls += 1
        registry.register_protocol("stub-epidemic", EpidemicProtocol)
        registry.register_scheduler(
            "stub-round-robin", lambda n, seed=None: RoundRobinScheduler(n))
        registry.register_predicate(
            "stub-always", lambda simulator, protocol, initial: lambda c: True)
        registry.register_simulator(
            "stub-none", registry.SIMULATORS["none"])

    def explode():
        raise RuntimeError("broken third-party distribution")

    module.register = register
    module.explode = explode
    monkeypatch.setitem(sys.modules, "repro_thirdparty_stub", module)

    for key, table in (
        ("stub-epidemic", registry.PROTOCOLS),
        ("stub-round-robin", registry.SCHEDULERS),
        ("stub-always", registry.PREDICATES),
        ("stub-none", registry.SIMULATORS),
    ):
        assert key not in table

    yield module

    # Entry points are module-level state: scrub what the test loaded.
    registry.PROTOCOLS.pop("stub-epidemic", None)
    registry.SCHEDULERS.pop("stub-round-robin", None)
    registry.PREDICATES.pop("stub-always", None)
    registry.SIMULATORS.pop("stub-none", None)
    registry._LOADED_ENTRY_POINTS.difference_update(
        {name_value for name_value in registry._LOADED_ENTRY_POINTS
         if name_value[1].startswith("repro_thirdparty_stub")})
    registry.ENTRY_POINT_ERRORS.pop("stub-broken", None)


def entry_point(name, value):
    return importlib.metadata.EntryPoint(name, value, registry.ENTRY_POINT_GROUP)


class TestLoadEntryPoints:
    def test_stub_distribution_registers_everything(self, stub_distribution):
        loaded = registry.load_entry_points(
            [entry_point("stub", "repro_thirdparty_stub:register")])
        assert loaded == ["stub"]
        assert registry.PROTOCOLS["stub-epidemic"] is EpidemicProtocol
        assert "stub-round-robin" in registry.SCHEDULERS
        assert "stub-always" in registry.PREDICATES
        assert "stub-none" in registry.SIMULATORS

    def test_loading_is_idempotent(self, stub_distribution):
        entries = [entry_point("stub", "repro_thirdparty_stub:register")]
        assert registry.load_entry_points(entries) == ["stub"]
        assert registry.load_entry_points(entries) == []
        assert stub_distribution.register_calls == 1

    def test_module_valued_entry_point_loads_by_import(self, stub_distribution):
        """A bare-module entry point relies on import side effects; loading
        it must not raise and must mark it as seen."""
        entries = [entry_point("stub-module", "repro_thirdparty_stub")]
        assert registry.load_entry_points(entries) == ["stub-module"]
        assert registry.load_entry_points(entries) == []
        assert stub_distribution.register_calls == 0  # never called

    def test_broken_entry_point_is_isolated(self, stub_distribution):
        loaded = registry.load_entry_points([
            entry_point("stub-broken", "repro_thirdparty_stub:explode"),
            entry_point("stub", "repro_thirdparty_stub:register"),
        ])
        assert loaded == ["stub"]  # the good one still loads
        assert "broken third-party distribution" in \
            registry.ENTRY_POINT_ERRORS["stub-broken"]

    def test_strict_mode_raises(self, stub_distribution):
        with pytest.raises(RuntimeError, match="broken third-party"):
            registry.load_entry_points(
                [entry_point("stub-broken", "repro_thirdparty_stub:explode")],
                strict=True)

    def test_discovery_scans_the_group(self, stub_distribution, monkeypatch):
        """The no-argument call discovers through importlib.metadata."""
        def fake_entry_points(*, group):
            assert group == registry.ENTRY_POINT_GROUP
            return [entry_point("stub", "repro_thirdparty_stub:register")]

        monkeypatch.setattr(
            registry.importlib.metadata, "entry_points", fake_entry_points)
        assert registry.load_entry_points() == ["stub"]


class TestEntryPointKeysDriveExperiments:
    def test_spec_resolves_entry_point_keys(self, stub_distribution):
        registry.load_entry_points(
            [entry_point("stub", "repro_thirdparty_stub:register")])
        spec = registry.ExperimentSpec(
            protocol="stub-epidemic", population=5,
            predicate="stub-always", scheduler="stub-round-robin",
            simulator="stub-none")
        result = repeat_experiment(spec=spec, runs=2, max_steps=100, base_seed=0)
        assert result.runs == 2
        assert result.all_succeeded  # stub predicate holds immediately
