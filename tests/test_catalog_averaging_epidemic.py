"""Unit tests for the averaging and epidemic catalog protocols."""

import pytest

from repro.protocols.catalog.averaging import AveragingProtocol
from repro.protocols.catalog.epidemic import (
    INFORMED,
    SUSCEPTIBLE,
    EpidemicProtocol,
    OneWayEpidemicProtocol,
)
from repro.protocols.protocol import ProtocolError
from repro.protocols.state import Configuration


class TestAveraging:
    def test_invalid_max_value(self):
        with pytest.raises(ProtocolError):
            AveragingProtocol(max_value=0)

    def test_even_total_splits_evenly(self, averaging_protocol):
        assert averaging_protocol.delta(6, 2) == (4, 4)

    def test_odd_total_starter_keeps_ceiling(self, averaging_protocol):
        assert averaging_protocol.delta(5, 2) == (4, 3)

    def test_total_conserved(self, averaging_protocol):
        for starter in range(9):
            for reactor in range(9):
                new_starter, new_reactor = averaging_protocol.delta(starter, reactor)
                assert new_starter + new_reactor == starter + reactor

    def test_gap_never_increases(self, averaging_protocol):
        for starter in range(9):
            for reactor in range(9):
                new_starter, new_reactor = averaging_protocol.delta(starter, reactor)
                assert abs(new_starter - new_reactor) <= abs(starter - reactor)

    def test_total_helper(self):
        config = Configuration([1, 2, 3])
        assert AveragingProtocol.total(config) == 6

    def test_is_balanced(self):
        assert AveragingProtocol.is_balanced(Configuration([3, 3, 4]))
        assert not AveragingProtocol.is_balanced(Configuration([1, 5]))

    def test_output_is_value(self, averaging_protocol):
        assert averaging_protocol.output(5) == 5


class TestEpidemic:
    def test_informed_infects(self):
        protocol = EpidemicProtocol()
        assert protocol.delta(INFORMED, SUSCEPTIBLE) == (INFORMED, INFORMED)

    def test_susceptible_starter_does_not_infect(self):
        protocol = EpidemicProtocol()
        assert protocol.delta(SUSCEPTIBLE, INFORMED) == (SUSCEPTIBLE, INFORMED)

    def test_informed_count_never_decreases(self):
        protocol = EpidemicProtocol()
        for starter in protocol.states:
            for reactor in protocol.states:
                before = [starter, reactor].count(INFORMED)
                after = list(protocol.delta(starter, reactor)).count(INFORMED)
                assert after >= before

    def test_output(self):
        protocol = EpidemicProtocol()
        assert protocol.output(INFORMED) is True
        assert protocol.output(SUSCEPTIBLE) is False

    def test_helpers(self):
        config = EpidemicProtocol.initial_configuration(1, 3)
        assert EpidemicProtocol.informed_count(config) == 1
        assert not EpidemicProtocol.all_informed(config)
        assert EpidemicProtocol.all_informed(Configuration([INFORMED, INFORMED]))

    def test_one_way_variant_matches_two_way_reactor_side(self):
        two_way = EpidemicProtocol()
        one_way = OneWayEpidemicProtocol()
        for starter in two_way.states:
            for reactor in two_way.states:
                assert one_way.f(starter, reactor) == two_way.delta(starter, reactor)[1]

    def test_one_way_variant_g_is_identity(self):
        one_way = OneWayEpidemicProtocol()
        assert one_way.g(INFORMED) == INFORMED


class TestCatalogRegistry:
    def test_get_protocol_known(self):
        from repro.protocols import get_protocol

        protocol = get_protocol("pairing")
        assert protocol.name == "pairing"

    def test_get_protocol_with_kwargs(self):
        from repro.protocols import get_protocol

        protocol = get_protocol("threshold", threshold=5)
        assert protocol.threshold == 5

    def test_get_protocol_unknown(self):
        from repro.protocols import get_protocol

        with pytest.raises(KeyError):
            get_protocol("no-such-protocol")

    def test_catalog_protocols_are_closed(self):
        from repro.protocols import CATALOG

        for name, factory in CATALOG.items():
            protocol = factory()
            assert protocol.is_closed(), f"catalog protocol {name} is not closed"
