"""Unit tests for the one-way <-> two-way program adapters."""

import pytest

from repro.core.skno import SKnOSimulator
from repro.interaction.adapters import (
    NaiveOneWayProjection,
    OneWayAsTwoWay,
    one_way_as_two_way,
    two_way_as_one_way_naive,
)
from repro.interaction.models import IO, IT, T3, TW
from repro.interaction.omissions import FULL_OMISSION, NO_OMISSION
from repro.protocols.catalog.epidemic import INFORMED, SUSCEPTIBLE, OneWayEpidemicProtocol
from repro.protocols.catalog.pairing import PairingProtocol


class TestOneWayAsTwoWay:
    def test_requires_one_way_program(self):
        with pytest.raises(TypeError):
            one_way_as_two_way(object())

    def test_fs_is_g_and_fr_is_f(self):
        adapter = one_way_as_two_way(OneWayEpidemicProtocol())
        assert adapter.fs(INFORMED, SUSCEPTIBLE) == INFORMED
        assert adapter.fr(INFORMED, SUSCEPTIBLE) == INFORMED
        assert adapter.fr(SUSCEPTIBLE, INFORMED) == INFORMED

    def test_tw_execution_matches_it_execution(self):
        """Running the adapted program under TW equals running the original under IT."""
        protocol = OneWayEpidemicProtocol()
        adapter = one_way_as_two_way(protocol)
        for starter in (INFORMED, SUSCEPTIBLE):
            for reactor in (INFORMED, SUSCEPTIBLE):
                assert TW.apply(adapter, starter, reactor, NO_OMISSION) == IT.apply(
                    protocol, starter, reactor, NO_OMISSION
                )

    def test_omission_handlers_are_forwarded(self):
        simulator = SKnOSimulator(PairingProtocol(), omission_bound=1)
        adapter = one_way_as_two_way(simulator)
        state = simulator.initial_state("p")
        assert adapter.on_reactor_omission(state) == simulator.on_reactor_omission(state)
        assert adapter.on_starter_omission(state) == simulator.on_starter_omission(state)

    def test_delegation_of_simulator_interface(self):
        simulator = SKnOSimulator(PairingProtocol(), omission_bound=0)
        adapter = one_way_as_two_way(simulator)
        state = adapter.initial_state("c")
        assert adapter.project(state) == "c"
        assert adapter.protocol is simulator.protocol

    def test_t3_full_omission_uses_wrapped_handlers(self):
        simulator = SKnOSimulator(PairingProtocol(), omission_bound=1)
        adapter = one_way_as_two_way(simulator)
        starter = simulator.initial_state("p")
        reactor = simulator.initial_state("c")
        adapted = T3.apply(adapter, starter, reactor, FULL_OMISSION)
        # Starter side: SKnO's I3 variant ignores starter-side omissions.
        assert adapted[0] == starter
        # Reactor side: a joker is enqueued.
        assert adapted[1].joker_count() == 1

    def test_wrapped_property_and_repr(self):
        protocol = OneWayEpidemicProtocol()
        adapter = one_way_as_two_way(protocol)
        assert adapter.wrapped is protocol
        assert "OneWayAsTwoWay" in repr(adapter)
        assert isinstance(adapter, OneWayAsTwoWay)


class TestNaiveProjection:
    def test_only_reactor_half_is_applied(self):
        pairing = PairingProtocol()
        naive = two_way_as_one_way_naive(pairing)
        assert isinstance(naive, NaiveOneWayProjection)
        # The reactor becomes critical, but the producer is NOT consumed —
        # exactly the unsoundness that makes this projection not a simulation.
        assert naive.f("p", "c") == "cs"
        assert IO.apply(naive, "p", "c", NO_OMISSION) == ("p", "cs")

    def test_states_are_inherited(self):
        pairing = PairingProtocol()
        naive = two_way_as_one_way_naive(pairing)
        assert naive.states == pairing.states
        assert naive.protocol is pairing

    def test_naive_projection_violates_pairing_safety(self):
        """Two consumers can both become critical off a single producer."""
        pairing = PairingProtocol()
        naive = two_way_as_one_way_naive(pairing)
        # Producer observed by consumer 1, then by consumer 2: both turn critical.
        first = naive.f("p", "c")
        second = naive.f("p", "c")
        assert first == second == "cs"
