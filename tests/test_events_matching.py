"""Unit tests for simulation events, matchings and derived runs (Definitions 3 and 4)."""

import pytest

from repro.core.events import (
    DerivedStep,
    Matching,
    REACTOR_ROLE,
    STARTER_ROLE,
    SimulationEvent,
    build_derived_run,
    replay_derived_run,
    replay_derived_run_anonymous,
    verify_matched_pair,
)
from repro.protocols.catalog.pairing import PairingProtocol
from repro.protocols.state import Configuration


@pytest.fixture
def protocol():
    return PairingProtocol()


def starter_event(agent, pre, post, partner_pre, step=0, key=None):
    return SimulationEvent(
        step=step, agent=agent, role=STARTER_ROLE, pre_sim=pre, post_sim=post,
        partner_pre_sim=partner_pre, key=key)


def reactor_event(agent, pre, post, partner_pre, step=0, key=None):
    return SimulationEvent(
        step=step, agent=agent, role=REACTOR_ROLE, pre_sim=pre, post_sim=post,
        partner_pre_sim=partner_pre, key=key)


class TestSimulationEvent:
    def test_changed_flag(self):
        assert starter_event(0, "c", "cs", "p").changed
        assert not starter_event(0, "c", "c", "c").changed


class TestVerifyMatchedPair:
    def test_valid_pair(self, protocol):
        s = starter_event(0, "c", "cs", "p")
        r = reactor_event(1, "p", "bot", "c")
        assert verify_matched_pair(protocol, s, r)

    def test_same_agent_rejected(self, protocol):
        s = starter_event(0, "c", "cs", "p")
        r = reactor_event(0, "p", "bot", "c")
        assert not verify_matched_pair(protocol, s, r)

    def test_wrong_post_state_rejected(self, protocol):
        s = starter_event(0, "c", "cs", "p")
        r = reactor_event(1, "p", "p", "c")  # reactor should have become 'bot'
        assert not verify_matched_pair(protocol, s, r)

    def test_silent_pair_is_valid(self, protocol):
        s = starter_event(0, "c", "c", "c")
        r = reactor_event(1, "c", "c", "c")
        assert verify_matched_pair(protocol, s, r)


class TestGreedyMatching:
    def test_pairs_matching_keys(self, protocol):
        events = [
            reactor_event(1, "c", "cs", "p", step=2, key=("p", "c")),
            starter_event(0, "p", "bot", "c", step=5, key=("p", "c")),
        ]
        matching = Matching.greedy(protocol, events)
        assert matching.pairs == [(1, 0)]
        assert matching.unmatched == []
        assert matching.matched_event_count() == 2

    def test_events_without_keys_stay_unmatched(self, protocol):
        events = [reactor_event(1, "c", "cs", "p", key=None)]
        matching = Matching.greedy(protocol, events)
        assert matching.pairs == []
        assert matching.unmatched == [0]

    def test_incompatible_events_not_paired(self, protocol):
        events = [
            reactor_event(1, "c", "cs", "p", key="k"),
            starter_event(0, "c", "c", "c", key="k"),  # delta mismatch with the above
        ]
        matching = Matching.greedy(protocol, events)
        assert matching.pairs == []
        assert set(matching.unmatched) == {0, 1}

    def test_fifo_pairing_of_equal_keys(self, protocol):
        events = [
            reactor_event(1, "c", "cs", "p", step=1, key=("p", "c")),
            reactor_event(2, "c", "cs", "p", step=2, key=("p", "c")),
            starter_event(3, "p", "bot", "c", step=3, key=("p", "c")),
            starter_event(4, "p", "bot", "c", step=4, key=("p", "c")),
        ]
        matching = Matching.greedy(protocol, events)
        assert matching.pairs == [(2, 0), (3, 1)]
        assert matching.unmatched == []

    def test_changed_unmatched_events(self, protocol):
        events = [
            reactor_event(1, "c", "cs", "p", key="a"),
            reactor_event(2, "c", "c", "c", key="b"),
        ]
        matching = Matching.greedy(protocol, events)
        assert matching.changed_unmatched_events() == [0]

    def test_from_explicit_pairs(self, protocol):
        events = [
            starter_event(0, "c", "cs", "p"),
            reactor_event(1, "p", "bot", "c"),
            reactor_event(2, "c", "c", "c"),
        ]
        matching = Matching.from_explicit_pairs(events, [(0, 1)])
        assert matching.pairs == [(0, 1)]
        assert matching.unmatched == [2]
        assert matching.invalid_pairs(protocol) == []

    def test_invalid_pairs_detected(self, protocol):
        events = [
            starter_event(0, "c", "cs", "p"),
            reactor_event(1, "p", "p", "c"),
        ]
        matching = Matching.from_explicit_pairs(events, [(0, 1)])
        assert matching.invalid_pairs(protocol) == [(0, 1)]


class TestDerivedRun:
    def _pairing_events(self):
        return [
            reactor_event(1, "c", "cs", "p", step=3, key=("p", "c")),
            starter_event(0, "p", "bot", "c", step=7, key=("p", "c")),
        ]

    def test_build_orders_by_earlier_event(self, protocol):
        events = self._pairing_events()
        derived = build_derived_run(events, [(1, 0)])
        assert len(derived) == 1
        step = derived[0]
        assert step.starter_agent == 0 and step.reactor_agent == 1
        assert step.order_key == (0, 1)

    def test_replay_consistent(self, protocol):
        events = self._pairing_events()
        derived = build_derived_run(events, [(1, 0)])
        report = replay_derived_run(protocol, Configuration(["p", "c"]), derived)
        assert report.consistent
        assert report.final_configuration == Configuration(["bot", "cs"])

    def test_replay_detects_wrong_pre_state(self, protocol):
        derived = [
            DerivedStep(
                starter_agent=0, reactor_agent=1,
                starter_pre="c", reactor_pre="p",
                starter_post="cs", reactor_post="bot",
                starter_event_index=0, reactor_event_index=1,
            )
        ]
        report = replay_derived_run(protocol, Configuration(["p", "c"]), derived)
        assert not report.consistent
        assert "expected pre-states" in report.errors[0]

    def test_replay_detects_delta_mismatch(self, protocol):
        derived = [
            DerivedStep(
                starter_agent=0, reactor_agent=1,
                starter_pre="p", reactor_pre="c",
                starter_post="p", reactor_post="c",  # should be (bot, cs)
                starter_event_index=0, reactor_event_index=1,
            )
        ]
        report = replay_derived_run(protocol, Configuration(["p", "c"]), derived)
        assert not report.consistent
        assert "delta_P" in report.errors[0]

    def test_anonymous_replay_accepts_any_agent_assignment(self, protocol):
        """The multiset replay does not care which producer was consumed."""
        derived = [
            DerivedStep(
                starter_agent=5, reactor_agent=9,       # indices are irrelevant here
                starter_pre="p", reactor_pre="c",
                starter_post="bot", reactor_post="cs",
                starter_event_index=0, reactor_event_index=1,
            )
        ]
        report = replay_derived_run_anonymous(
            protocol, Configuration(["p", "p", "c"]), derived
        )
        assert report.consistent
        assert report.final_configuration.multiset() == {"p": 1, "bot": 1, "cs": 1}

    def test_anonymous_replay_detects_missing_pre_state(self, protocol):
        derived = [
            DerivedStep(
                starter_agent=0, reactor_agent=1,
                starter_pre="p", reactor_pre="c",
                starter_post="bot", reactor_post="cs",
                starter_event_index=0, reactor_event_index=1,
            )
        ] * 2  # two pairings but only one producer available
        report = replay_derived_run_anonymous(protocol, Configuration(["p", "c", "c"]), derived)
        assert not report.consistent
        assert any("no agent in simulated state" in error for error in report.errors)

    def test_anonymous_replay_detects_delta_mismatch(self, protocol):
        derived = [
            DerivedStep(
                starter_agent=0, reactor_agent=1,
                starter_pre="p", reactor_pre="c",
                starter_post="p", reactor_post="c",
                starter_event_index=0, reactor_event_index=1,
            )
        ]
        report = replay_derived_run_anonymous(protocol, Configuration(["p", "c"]), derived)
        assert not report.consistent
