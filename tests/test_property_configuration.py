"""Property-based tests for Configuration (hypothesis)."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.state import Configuration

states = st.sampled_from(["a", "b", "c", "d"])
state_lists = st.lists(states, min_size=1, max_size=12)


class TestConfigurationProperties:
    @given(state_lists)
    def test_multiset_matches_counter(self, values):
        assert Configuration(values).multiset() == Counter(values)

    @given(state_lists)
    def test_count_sums_to_length(self, values):
        config = Configuration(values)
        assert sum(config.count(s) for s in set(values)) == len(config)

    @given(state_lists, states)
    def test_indices_of_are_exactly_matching_positions(self, values, target):
        config = Configuration(values)
        indices = config.indices_of(target)
        assert all(values[i] == target for i in indices)
        assert len(indices) == values.count(target)

    @given(state_lists, st.integers(min_value=0, max_value=11), states)
    def test_replace_changes_exactly_one_position(self, values, index, new_state):
        config = Configuration(values)
        index = index % len(values)
        updated = config.replace(index, new_state)
        assert updated[index] == new_state
        assert all(updated[i] == config[i] for i in range(len(values)) if i != index)

    @given(state_lists, st.randoms(use_true_random=False))
    def test_permutation_preserves_multiset(self, values, rng):
        config = Configuration(values)
        permutation = list(range(len(values)))
        rng.shuffle(permutation)
        assert config.permuted(permutation).same_multiset(config)

    @given(state_lists)
    def test_equal_configurations_hash_equal(self, values):
        assert hash(Configuration(values)) == hash(Configuration(list(values)))

    @given(state_lists)
    def test_project_identity_is_noop(self, values):
        config = Configuration(values)
        assert config.project(lambda s: s) == config

    @given(state_lists)
    def test_from_counts_round_trip(self, values):
        config = Configuration(values)
        rebuilt = Configuration.from_counts(dict(config.multiset()))
        assert rebuilt.same_multiset(config)
