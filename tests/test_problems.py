"""Unit tests for the problem specifications."""

import pytest

from repro.problems.base import Problem
from repro.problems.leader_election import LeaderElectionProblem
from repro.problems.majority import MajorityProblem
from repro.problems.pairing import PairingProblem
from repro.problems.threshold import ThresholdProblem
from repro.protocols.state import Configuration


class TestPairingProblem:
    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            PairingProblem(-1, 2)

    def test_expected_critical(self):
        assert PairingProblem(3, 5).expected_critical == 3
        assert PairingProblem(5, 3).expected_critical == 3

    def test_initial_configuration(self):
        config = PairingProblem(2, 3).initial_configuration()
        assert config.count("c") == 2
        assert config.count("p") == 3

    def test_safety_violation_detected(self):
        problem = PairingProblem(consumers=3, producers=1)
        bad = Configuration(["cs", "cs", "c", "bot"])
        assert problem.check_configuration_safety(bad)

    def test_safe_configuration_passes(self):
        problem = PairingProblem(consumers=3, producers=2)
        good = Configuration(["cs", "c", "c", "bot", "p"])
        assert problem.check_configuration_safety(good) == []

    def test_consumer_side_conservation(self):
        problem = PairingProblem(consumers=1, producers=3)
        bad = Configuration(["cs", "c", "p", "p"])  # 2 consumer-side agents but only 1 consumer
        assert problem.check_configuration_safety(bad)

    def test_irrevocability_detected_over_sequence(self):
        problem = PairingProblem(consumers=1, producers=1)
        configs = [
            Configuration(["c", "p"]),
            Configuration(["cs", "bot"]),
            Configuration(["c", "bot"]),  # the critical agent reverted: violation
        ]
        report = problem.check(configs)
        assert report.irrevocability_violations
        assert not report.safe

    def test_liveness(self):
        problem = PairingProblem(consumers=2, producers=1)
        assert problem.is_live(Configuration(["cs", "c", "bot"]))
        assert not problem.is_live(Configuration(["c", "c", "p"]))

    def test_full_check_on_good_execution(self):
        problem = PairingProblem(consumers=1, producers=1)
        configs = [Configuration(["c", "p"]), Configuration(["cs", "bot"])]
        report = problem.check(configs)
        assert report.ok
        assert report.configurations_checked == 2
        assert "pairing" in report.summary()

    def test_helpers(self):
        config = Configuration(["cs", "bot", "p"])
        assert PairingProblem.critical_count(config) == 1
        assert PairingProblem.spent_producers(config) == 1


class TestLeaderElectionProblem:
    def test_validation(self):
        with pytest.raises(ValueError):
            LeaderElectionProblem(0)

    def test_zero_leaders_is_a_safety_violation(self):
        problem = LeaderElectionProblem(3)
        assert problem.check_configuration_safety(Configuration(["F", "F", "F"]))

    def test_liveness_single_leader(self):
        problem = LeaderElectionProblem(3)
        assert problem.is_live(Configuration(["L", "F", "F"]))
        assert not problem.is_live(Configuration(["L", "L", "F"]))

    def test_initial_configuration(self):
        assert LeaderElectionProblem(4).initial_configuration().count("L") == 4


class TestMajorityProblem:
    def test_tie_rejected(self):
        with pytest.raises(ValueError):
            MajorityProblem(2, 2)

    def test_expected_output(self):
        assert MajorityProblem(3, 1).expected == "A"
        assert MajorityProblem(1, 3).expected == "B"

    def test_liveness(self):
        problem = MajorityProblem(3, 1)
        assert problem.is_live(Configuration(["A", "A", "A", "a"]))
        assert not problem.is_live(Configuration(["A", "A", "B", "a"]))

    def test_population_size_safety(self):
        problem = MajorityProblem(2, 1)
        assert problem.check_configuration_safety(Configuration(["A", "B"]))
        assert problem.check_configuration_safety(Configuration(["A", "B", "A"])) == []

    def test_initial_configuration(self):
        assert MajorityProblem(2, 1).initial_configuration().count("A") == 2


class TestThresholdProblem:
    def test_expected_output(self):
        assert ThresholdProblem(ones=3, zeros=2, threshold=3).expected is True
        assert ThresholdProblem(ones=2, zeros=2, threshold=3).expected is False

    def test_weight_conservation_safety(self):
        problem = ThresholdProblem(ones=1, zeros=1, threshold=3)
        bad = Configuration([(2, False), (1, False)])  # total weight 3 > 1 one-input
        assert problem.check_configuration_safety(bad)

    def test_false_positive_claims_are_safety_violations(self):
        problem = ThresholdProblem(ones=1, zeros=2, threshold=3)
        bad = Configuration([(0, True), (1, False), (0, False)])
        assert problem.check_configuration_safety(bad)

    def test_liveness(self):
        problem = ThresholdProblem(ones=3, zeros=1, threshold=3)
        live = Configuration([(0, True), (0, True), (3, True), (0, True)])
        assert problem.is_live(live)

    def test_initial_configuration(self):
        config = ThresholdProblem(ones=2, zeros=1, threshold=3).initial_configuration()
        assert len(config) == 3


class TestProblemBase:
    def test_is_live_abstract(self):
        with pytest.raises(NotImplementedError):
            Problem().is_live(Configuration(["x"]))

    def test_default_safety_is_empty(self):
        assert Problem().check_configuration_safety(Configuration(["x"])) == []

    def test_check_empty_sequence(self):
        problem = PairingProblem(1, 1)
        report = problem.check([])
        assert report.configurations_checked == 0
        assert not report.live
