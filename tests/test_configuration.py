"""Unit tests for repro.protocols.state.Configuration."""

import pytest

from repro.protocols.state import Configuration, MutableConfiguration, state_multiset


class TestConstruction:
    def test_from_iterable(self):
        config = Configuration(["a", "b", "a"])
        assert len(config) == 3
        assert config.states == ("a", "b", "a")

    def test_uniform(self):
        config = Configuration.uniform("x", 5)
        assert len(config) == 5
        assert all(state == "x" for state in config)

    def test_uniform_zero_agents(self):
        assert len(Configuration.uniform("x", 0)) == 0

    def test_uniform_negative_raises(self):
        with pytest.raises(ValueError):
            Configuration.uniform("x", -1)

    def test_from_counts(self):
        config = Configuration.from_counts({"a": 2, "b": 3})
        assert config.count("a") == 2
        assert config.count("b") == 3
        assert len(config) == 5

    def test_from_counts_negative_raises(self):
        with pytest.raises(ValueError):
            Configuration.from_counts({"a": -1})

    def test_from_counts_is_deterministic(self):
        first = Configuration.from_counts({"a": 2, "b": 1})
        second = Configuration.from_counts({"a": 2, "b": 1})
        assert first == second


class TestContainerProtocol:
    def test_indexing(self):
        config = Configuration(["a", "b", "c"])
        assert config[0] == "a"
        assert config[2] == "c"

    def test_iteration(self):
        config = Configuration([1, 2, 3])
        assert list(config) == [1, 2, 3]

    def test_equality_with_configuration(self):
        assert Configuration(["a", "b"]) == Configuration(["a", "b"])
        assert Configuration(["a", "b"]) != Configuration(["b", "a"])

    def test_equality_with_tuple(self):
        assert Configuration(["a", "b"]) == ("a", "b")

    def test_hashable(self):
        seen = {Configuration(["a", "b"]), Configuration(["a", "b"])}
        assert len(seen) == 1

    def test_hash_differs_for_different_configs(self):
        assert hash(Configuration(["a", "b"])) != hash(Configuration(["b", "a"]))

    def test_repr_contains_states(self):
        assert "a" in repr(Configuration(["a"]))


class TestViews:
    def test_multiset(self):
        config = Configuration(["a", "b", "a"])
        assert config.multiset() == {"a": 2, "b": 1}

    def test_state_multiset_helper(self):
        assert state_multiset(["x", "x", "y"]) == {"x": 2, "y": 1}

    def test_count(self):
        config = Configuration(["a", "b", "a"])
        assert config.count("a") == 2
        assert config.count("z") == 0

    def test_count_if(self):
        config = Configuration([1, 2, 3, 4])
        assert config.count_if(lambda value: value % 2 == 0) == 2

    def test_indices_of(self):
        config = Configuration(["a", "b", "a"])
        assert config.indices_of("a") == (0, 2)
        assert config.indices_of("z") == ()

    def test_histogram(self):
        config = Configuration(["a", "a", "b"])
        assert config.histogram() == {"a": 2, "b": 1}

    def test_same_multiset(self):
        assert Configuration(["a", "b"]).same_multiset(Configuration(["b", "a"]))
        assert not Configuration(["a", "a"]).same_multiset(Configuration(["a", "b"]))

    def test_mutating_returned_multiset_does_not_corrupt_cache(self):
        config = Configuration(["a", "b", "a"])
        first = config.multiset()
        first["a"] = 99
        del first["b"]
        assert config.multiset() == {"a": 2, "b": 1}
        assert config.count("a") == 2
        assert config.count("b") == 1
        assert config.histogram() == {"a": 2, "b": 1}

    def test_mutating_returned_histogram_does_not_corrupt_cache(self):
        config = Configuration(["a", "a", "b"])
        config.histogram()["a"] = 0
        assert config.histogram() == {"a": 2, "b": 1}
        assert config.count("a") == 2


class TestFunctionalUpdates:
    def test_replace(self):
        config = Configuration(["a", "b"])
        updated = config.replace(1, "c")
        assert updated == Configuration(["a", "c"])
        assert config == Configuration(["a", "b"]), "original must be unchanged"

    def test_replace_out_of_range(self):
        with pytest.raises(IndexError):
            Configuration(["a"]).replace(3, "b")

    def test_replace_many(self):
        config = Configuration(["a", "b", "c"])
        updated = config.replace_many({0: "x", 2: "z"})
        assert updated == Configuration(["x", "b", "z"])

    def test_replace_many_out_of_range(self):
        with pytest.raises(IndexError):
            Configuration(["a"]).replace_many({5: "x"})

    def test_apply_interaction(self):
        config = Configuration(["a", "b", "c"])
        updated = config.apply_interaction(0, 2, "a2", "c2")
        assert updated == Configuration(["a2", "b", "c2"])

    def test_apply_interaction_same_agent_raises(self):
        with pytest.raises(ValueError):
            Configuration(["a", "b"]).apply_interaction(1, 1, "x", "y")

    def test_project(self):
        config = Configuration([1, 2, 3])
        assert config.project(lambda value: value * 10) == Configuration([10, 20, 30])

    def test_permuted(self):
        config = Configuration(["a", "b", "c"])
        assert config.permuted([2, 0, 1]) == Configuration(["c", "a", "b"])

    def test_permuted_invalid(self):
        with pytest.raises(ValueError):
            Configuration(["a", "b"]).permuted([0, 0])

    def test_permutation_preserves_multiset(self):
        config = Configuration(["a", "b", "c"])
        assert config.permuted([1, 2, 0]).same_multiset(config)


class TestMutableConfiguration:
    def test_round_trip_through_freeze(self):
        config = Configuration(["a", "b", "c"])
        buffer = MutableConfiguration.from_configuration(config)
        assert len(buffer) == 3
        assert list(buffer) == ["a", "b", "c"]
        assert buffer.freeze() == config

    def test_apply_interaction_is_in_place(self):
        buffer = MutableConfiguration(["a", "b", "c"])
        buffer.apply_interaction(0, 2, "x", "y")
        assert buffer[0] == "x"
        assert buffer[2] == "y"
        assert buffer.freeze() == Configuration(["x", "b", "y"])

    def test_apply_interaction_same_agent_raises(self):
        with pytest.raises(ValueError):
            MutableConfiguration(["a", "b"]).apply_interaction(0, 0, "x", "y")

    def test_freeze_is_a_snapshot(self):
        buffer = MutableConfiguration(["a", "b"])
        frozen = buffer.freeze()
        buffer[0] = "z"
        assert frozen == Configuration(["a", "b"])
        assert buffer.freeze() == Configuration(["z", "b"])

    def test_read_api_mirrors_configuration(self):
        buffer = MutableConfiguration(["a", "b", "a"])
        assert buffer.count("a") == 2
        assert buffer.count_if(lambda s: s == "b") == 1
        assert buffer.multiset() == {"a": 2, "b": 1}
        assert buffer.histogram() == {"a": 2, "b": 1}
        assert buffer.indices_of("a") == (0, 2)
        assert buffer.project(str.upper) == Configuration(["A", "B", "A"])
        assert buffer.same_multiset(Configuration(["b", "a", "a"]))

    def test_equality_with_configuration_and_tuple(self):
        buffer = MutableConfiguration(["a", "b"])
        assert buffer == Configuration(["a", "b"])
        assert buffer == ("a", "b")
        assert buffer == MutableConfiguration(["a", "b"])
        assert buffer != MutableConfiguration(["b", "a"])

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(MutableConfiguration(["a", "b"]))
