"""Determinism-contracts linter tests: per-rule violating/clean fixture
pairs for RPL001-RPL007, pragma suppression (including the
missing-reason rejection, RPL000), the versioned JSON report schema, CLI
exit codes, and the self-hosting property — the repo's own sources lint
clean, and every function in ``src/repro`` carries a return annotation
(the mypy ratchet's level 1, pinned here because mypy itself is only
present in CI)."""

from __future__ import annotations

import ast
import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.lint import (
    Finding,
    LintResult,
    all_rules,
    lint_files,
    lint_source,
    parse_pragmas,
)
from repro.lint.cli import main as lint_main
from repro.lint.framework import module_name
from repro.lint.pragmas import MALFORMED_PRAGMA_CODE
from repro.lint.reporters import JSON_REPORT_VERSION, as_json_document, render_text
from repro.lint.rules_contracts import (
    NON_COUNT_EXPRESSIBLE,
    check_registry_contracts,
)

REPO_SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def codes(findings) -> list:
    return [finding.code for finding in findings]


# ---------------------------------------------------------------------------
# RPL001 — unseeded RNG construction / module-level shared-state draws
# ---------------------------------------------------------------------------

class TestUnseededRandom:
    def test_unseeded_random_constructor_flagged(self):
        findings = lint_source("import random\nrng = random.Random()\n")
        assert codes(findings) == ["RPL001"]
        assert findings[0].line == 2

    def test_unseeded_default_rng_flagged_through_alias(self):
        findings = lint_source(
            "import numpy as np\nrng = np.random.default_rng()\n")
        assert codes(findings) == ["RPL001"]

    def test_explicit_none_seed_flagged(self):
        findings = lint_source("import random\nrng = random.Random(None)\n")
        assert codes(findings) == ["RPL001"]

    def test_module_level_draw_flagged(self):
        findings = lint_source("import random\nx = random.randint(0, 9)\n")
        assert codes(findings) == ["RPL001"]

    def test_np_random_module_draw_flagged(self):
        findings = lint_source(
            "import numpy as np\nx = np.random.random(4)\n")
        assert codes(findings) == ["RPL001"]

    def test_seeded_constructions_clean(self):
        source = (
            "import random\n"
            "import numpy as np\n"
            "rng = random.Random(7)\n"
            "gen = np.random.default_rng(7)\n"
            "seq = np.random.SeedSequence(7)\n"
        )
        assert lint_source(source) == []

    def test_from_import_alias_resolved(self):
        findings = lint_source(
            "from numpy.random import default_rng as mk\nrng = mk()\n")
        assert codes(findings) == ["RPL001"]


# ---------------------------------------------------------------------------
# RPL002 — wall-clock reads in pure fold/hash layers
# ---------------------------------------------------------------------------

class TestWallClock:
    def test_wall_clock_in_pure_layer_flagged(self):
        findings = lint_source(
            "import time\nstamp = time.time()\n",
            module="repro.campaign.planner")
        assert codes(findings) == ["RPL002"]

    def test_datetime_now_flagged_in_analysis(self):
        findings = lint_source(
            "from datetime import datetime\nstamp = datetime.now()\n",
            module="repro.analysis.reporting")
        assert codes(findings) == ["RPL002"]

    def test_aliased_perf_counter_flagged(self):
        findings = lint_source(
            "from time import perf_counter as pc\nt = pc()\n",
            module="repro.campaign.report")
        assert codes(findings) == ["RPL002"]

    def test_wall_clock_outside_scope_clean(self):
        # Timing belongs to the runner layer, recorded as data.
        findings = lint_source(
            "import time\nstamp = time.time()\n",
            module="repro.campaign.runner")
        assert findings == []

    def test_pure_layer_without_clocks_clean(self):
        findings = lint_source(
            "import json\npayload = json.dumps({'a': 1}, sort_keys=True)\n",
            module="repro.campaign.planner")
        assert findings == []


# ---------------------------------------------------------------------------
# RPL003 — broad / bare except
# ---------------------------------------------------------------------------

class TestBroadExcept:
    def test_bare_except_flagged(self):
        findings = lint_source(
            "try:\n    x = 1\nexcept:\n    pass\n")
        assert codes(findings) == ["RPL003"]

    def test_except_exception_flagged(self):
        findings = lint_source(
            "try:\n    x = 1\nexcept Exception:\n    pass\n")
        assert codes(findings) == ["RPL003"]

    def test_tuple_containing_base_exception_flagged(self):
        findings = lint_source(
            "try:\n    x = 1\nexcept (ValueError, BaseException):\n    pass\n")
        assert codes(findings) == ["RPL003"]

    def test_narrow_except_clean(self):
        findings = lint_source(
            "try:\n    x = 1\nexcept (ValueError, KeyError):\n    pass\n")
        assert findings == []


# ---------------------------------------------------------------------------
# RPL004 — store writes bypassing the atomic-append helper
# ---------------------------------------------------------------------------

class TestStoreBypass:
    def test_write_mode_open_flagged_in_campaign(self):
        findings = lint_source(
            "with open('out.jsonl', 'w') as fh:\n    fh.write('x')\n",
            module="repro.campaign.runner")
        assert codes(findings) == ["RPL004"]

    def test_mode_keyword_flagged(self):
        findings = lint_source(
            "fh = open('out.jsonl', mode='a')\n",
            module="repro.campaign.report")
        assert codes(findings) == ["RPL004"]

    def test_path_write_text_flagged(self):
        findings = lint_source(
            "from pathlib import Path\nPath('x').write_text('y')\n",
            module="repro.campaign.spec")
        assert codes(findings) == ["RPL004"]

    def test_read_mode_open_clean(self):
        findings = lint_source(
            "with open('spec.json') as fh:\n    data = fh.read()\n",
            module="repro.campaign.spec")
        assert findings == []

    def test_new_campaign_modules_are_in_scope(self):
        # The parallel executor and the queue hold no write path of their
        # own — if one appears, it is a finding, not a new sanctioned case.
        for module in ("repro.campaign.executor", "repro.campaign.queue"):
            findings = lint_source(
                "with open('out.jsonl', 'a') as fh:\n    fh.write('x')\n",
                module=module)
            assert codes(findings) == ["RPL004"]

    def test_sanctioned_writer_module_is_exempt(self):
        # store.py owns both sanctioned writers: the atomic-append helper
        # and compact_store's write-temp-then-rename rewrite.
        from repro.lint.rules_robustness import StoreBypassRule
        assert StoreBypassRule.sanctioned_modules == ("repro.campaign.store",)
        findings = lint_source(
            "import os\n"
            "with open('s.jsonl.compact.tmp', 'wb') as fh:\n"
            "    fh.write(b'{}')\n"
            "os.replace('s.jsonl.compact.tmp', 's.jsonl')\n",
            module="repro.campaign.store")
        assert findings == []

    def test_store_module_itself_exempt(self):
        # The helper module owns the durability contract.
        findings = lint_source(
            "fh = open('results.jsonl', 'a')\n",
            module="repro.campaign.store")
        assert findings == []

    def test_transport_module_is_in_scope(self):
        # The shared-memory result transport moves records between
        # processes; the single-writer store contract only holds if it
        # never grows a file-write path of its own.
        findings = lint_source(
            "with open('results.jsonl', 'a') as fh:\n    fh.write('x')\n",
            module="repro.engine.transport")
        assert codes(findings) == ["RPL004"]

    def test_outside_campaign_layer_clean(self):
        findings = lint_source(
            "fh = open('notes.txt', 'w')\n",
            module="repro.engine.experiment")
        assert findings == []


# ---------------------------------------------------------------------------
# RPL005 — registry contracts (seeded violations via the parameterised probe)
# ---------------------------------------------------------------------------

class TestRegistryContracts:
    def test_protocol_without_state_order_flagged(self):
        class NoOrder:
            pass

        findings = check_registry_contracts(
            "registry.py", protocols={"broken": NoOrder}, predicates={})
        assert codes(findings) == ["RPL005"]
        assert "state_order" in findings[0].message

    def test_non_expressible_predicate_needs_allowlisting(self):
        from repro.protocols.registry import PROTOCOLS

        class Opaque:
            def __call__(self, configuration):
                return False

        findings = check_registry_contracts(
            "registry.py",
            protocols={"pairing": PROTOCOLS["pairing"]},
            predicates={"opaque": lambda sim, proto, init: Opaque()},
            allowlist=set())
        assert codes(findings) == ["RPL005"]
        assert "not count-expressible" in findings[0].message

    def test_allowlisted_gap_clean(self):
        from repro.protocols.registry import PROTOCOLS

        class Opaque:
            def __call__(self, configuration):
                return False

        findings = check_registry_contracts(
            "registry.py",
            protocols={"pairing": PROTOCOLS["pairing"]},
            predicates={"opaque": lambda sim, proto, init: Opaque()},
            allowlist={("opaque", "pairing")})
        assert findings == []

    def test_stale_allowlist_entry_flagged(self):
        from repro.protocols.registry import PREDICATES, PROTOCOLS

        findings = check_registry_contracts(
            "registry.py",
            protocols={"epidemic": PROTOCOLS["epidemic"]},
            predicates={"stable-output": PREDICATES["stable-output"]},
            allowlist={("stable-output", "epidemic")})
        assert codes(findings) == ["RPL005"]
        assert "stale" in findings[0].message

    def test_live_registries_match_inventory(self):
        # The shipped allowlist is exactly the current compile-gap set.
        findings = check_registry_contracts("registry.py")
        assert findings == []
        assert NON_COUNT_EXPRESSIBLE == {
            ("stable-output", "averaging"),
            ("stable-output", "approximate-majority"),
            ("stable-output", "and"),
        }


# ---------------------------------------------------------------------------
# RPL006 — unordered iteration feeding hashes / plans / report folds
# ---------------------------------------------------------------------------

class TestUnorderedIteration:
    def test_set_iteration_flagged_in_campaign(self):
        findings = lint_source(
            "rows = [cell for cell in {1, 2, 3}]\n",
            module="repro.campaign.planner")
        assert codes(findings) == ["RPL006"]

    def test_set_constructor_for_loop_flagged(self):
        findings = lint_source(
            "for cell in set(cells):\n    emit(cell)\n",
            module="repro.campaign.planner")
        assert codes(findings) == ["RPL006"]

    def test_completed_ids_iteration_flagged(self):
        findings = lint_source(
            "def fold(store):\n"
            "    return [cid for cid in store.completed_ids()]\n",
            module="repro.campaign.report")
        assert codes(findings) == ["RPL006"]

    def test_dict_view_into_join_flagged(self):
        findings = lint_source(
            "header = ' '.join(fixed.keys())\n",
            module="repro.campaign.report")
        assert codes(findings) == ["RPL006"]

    def test_sorted_boundary_clean(self):
        source = (
            "rows = [cell for cell in sorted({1, 2, 3})]\n"
            "header = ' '.join(sorted(fixed.keys()))\n"
            "grid = tuple(sorted(set(cells)))\n"
        )
        assert lint_source(source, module="repro.campaign.planner") == []

    def test_outside_ordered_layers_clean(self):
        findings = lint_source(
            "rows = [cell for cell in {1, 2, 3}]\n",
            module="repro.scheduling.scheduler")
        assert findings == []


# ---------------------------------------------------------------------------
# RPL007 — observability is write-only (no obs imports in pure layers,
# no recorder values reaching determinism sinks)
# ---------------------------------------------------------------------------

class TestObsOneWay:
    def test_obs_import_flagged_in_planner(self):
        findings = lint_source(
            "from repro.obs.recorder import get_recorder\n",
            module="repro.campaign.planner")
        assert codes(findings) == ["RPL007"]

    def test_obs_package_import_flagged_in_analysis(self):
        findings = lint_source(
            "import repro.obs\n", module="repro.analysis.reporting")
        assert codes(findings) == ["RPL007"]

    def test_obs_import_flagged_in_store(self):
        findings = lint_source(
            "from repro.obs import MetricsRecorder\n",
            module="repro.campaign.store")
        assert codes(findings) == ["RPL007"]

    def test_obs_import_outside_pure_layers_clean(self):
        source = "from repro.obs.recorder import get_recorder\n"
        assert lint_source(source, module="repro.engine.convergence") == []
        assert lint_source(source, module="repro.campaign.runner") == []

    def test_recorder_flow_into_canonical_json_flagged(self):
        findings = lint_source(
            "from repro.obs.recorder import get_recorder\n"
            "payload = canonical_json(get_recorder())\n",
            module="repro.campaign.runner")
        assert codes(findings) == ["RPL007"]

    def test_tainted_local_flow_into_hashlib_flagged(self):
        findings = lint_source(
            "import hashlib\n"
            "from repro.obs.recorder import get_recorder\n"
            "obs = get_recorder()\n"
            "digest = hashlib.sha256(obs)\n",
            module="repro.engine.experiment")
        assert codes(findings) == ["RPL007"]

    def test_recorder_flow_into_store_append_flagged(self):
        findings = lint_source(
            "from repro.obs.recorder import NULL_RECORDER\n"
            "store.append_cell(NULL_RECORDER)\n",
            module="repro.campaign.runner")
        assert codes(findings) == ["RPL007"]

    def test_write_only_instrumentation_clean(self):
        source = (
            "from repro.obs.recorder import NULL_RECORDER, get_recorder\n"
            "def run(store, record) -> None:\n"
            "    obs = get_recorder()\n"
            "    if obs is not NULL_RECORDER:\n"
            "        obs.counter('engine.runs')\n"
            "        obs.event('campaign.cell', status=record['status'])\n"
            "    store.append_cell(record)\n"
        )
        assert lint_source(source, module="repro.campaign.runner") == []


# ---------------------------------------------------------------------------
# Pragmas — suppression requires a reason; malformed pragmas are findings
# ---------------------------------------------------------------------------

class TestPragmas:
    VIOLATION = "import random\nrng = random.Random()\n"

    def test_trailing_pragma_with_reason_suppresses(self):
        source = ("import random\n"
                  "rng = random.Random()  "
                  "# repro-lint: disable=RPL001 reason=fixture exercises the "
                  "unseeded path\n")
        assert lint_source(source) == []

    def test_standalone_pragma_applies_to_next_statement(self):
        source = ("import random\n"
                  "# repro-lint: disable=RPL001 reason=fixture exercises the "
                  "unseeded path\n"
                  "rng = random.Random()\n")
        assert lint_source(source) == []

    def test_pragma_without_reason_rejected(self):
        source = ("import random\n"
                  "rng = random.Random()  # repro-lint: disable=RPL001\n")
        findings = lint_source(source)
        # The violation survives AND the reason-less pragma is flagged.
        assert codes(findings) == ["RPL000", "RPL001"]

    def test_malformed_pragma_body_flagged(self):
        findings = lint_source("x = 1  # repro-lint: disble=RPL001\n")
        assert codes(findings) == [MALFORMED_PRAGMA_CODE]

    def test_pragma_only_suppresses_listed_codes(self):
        source = ("import random\n"
                  "rng = random.Random()  "
                  "# repro-lint: disable=RPL003 reason=wrong code on purpose\n")
        assert codes(lint_source(source)) == ["RPL001"]

    def test_pragma_in_docstring_is_not_a_pragma(self):
        # Pragmas are comments; the same text inside a string is inert.
        source = ('"""Docs: # repro-lint: disable=RPL001"""\n'
                  "import random\nrng = random.Random()\n")
        assert codes(lint_source(source)) == ["RPL001"]

    def test_parse_pragmas_records_reason(self):
        index = parse_pragmas(
            "x = 1  # repro-lint: disable=RPL001,RPL003 reason=shared fixture\n")
        assert index.malformed == []
        assert index.suppresses(1, "RPL001")
        assert index.suppresses(1, "RPL003")
        assert not index.suppresses(1, "RPL002")

    def test_rpl000_is_not_suppressible(self):
        source = ("x = 1  # repro-lint: disable=RPL001\n")
        findings = lint_source(source)
        assert MALFORMED_PRAGMA_CODE in codes(findings)


# ---------------------------------------------------------------------------
# Reporters — the JSON document is versioned and stable
# ---------------------------------------------------------------------------

class TestReporters:
    RESULT = LintResult(
        findings=[Finding(code="RPL001", path="pkg/mod.py", line=3,
                          column=5, message="unseeded rng")],
        files_checked=2)

    def test_json_document_schema(self):
        document = as_json_document(self.RESULT)
        assert document == {
            "version": JSON_REPORT_VERSION,
            "files_checked": 2,
            "findings": [
                {"rule": "RPL001", "path": "pkg/mod.py", "line": 3,
                 "column": 5, "message": "unseeded rng"},
            ],
            "summary": {"RPL001": 1},
        }

    def test_json_round_trips(self):
        from repro.lint.reporters import render_json
        assert json.loads(render_json(self.RESULT)) == as_json_document(self.RESULT)

    def test_text_report_lists_finding_and_counts(self):
        text = render_text(self.RESULT)
        assert "pkg/mod.py:3:5: RPL001 unseeded rng" in text
        assert "1 finding (RPL001: 1) in 2 files" in text

    def test_clean_text_report(self):
        clean = LintResult(findings=[], files_checked=7)
        assert render_text(clean) == "repro lint: 7 files clean\n"


# ---------------------------------------------------------------------------
# Driver + CLI — selection, exit codes, syntax-error findings
# ---------------------------------------------------------------------------

class TestDriver:
    def test_module_name_anchors_at_repro(self):
        assert module_name("/x/src/repro/campaign/store.py") == "repro.campaign.store"
        assert module_name("/x/src/repro/lint/__init__.py") == "repro.lint"
        assert module_name("/tmp/fixture.py") == "fixture"

    def test_lint_files_flags_syntax_errors(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        result = lint_files([str(bad)])
        assert codes(result.findings) == ["RPL999"]

    def test_select_and_ignore(self, tmp_path):
        target = tmp_path / "fixture.py"
        target.write_text(
            "import random\n"
            "rng = random.Random()\n"
            "try:\n    x = 1\nexcept Exception:\n    pass\n")
        both = lint_files([str(target)])
        assert codes(both.findings) == ["RPL001", "RPL003"]
        only_rng = lint_files([str(target)], select=["RPL001"])
        assert codes(only_rng.findings) == ["RPL001"]
        no_rng = lint_files([str(target)], ignore=["RPL001"])
        assert codes(no_rng.findings) == ["RPL003"]

    def test_cli_exit_codes(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nrng = random.Random()\n")
        clean = tmp_path / "clean.py"
        clean.write_text("import random\nrng = random.Random(7)\n")

        assert lint_main([str(clean)]) == 0
        assert lint_main([str(dirty)]) == 1
        assert lint_main([str(dirty), "--select", "NOPE9"]) == 2
        capsys.readouterr()

    def test_cli_json_output(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nrng = random.Random()\n")
        assert lint_main([str(dirty), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == JSON_REPORT_VERSION
        assert document["summary"] == {"RPL001": 1}

    def test_repro_cli_exposes_lint(self, tmp_path, capsys):
        from repro.cli import main as repro_main
        clean = tmp_path / "clean.py"
        clean.write_text("import random\nrng = random.Random(7)\n")
        assert repro_main(["lint", str(clean)]) == 0
        assert "1 files clean" in capsys.readouterr().out

    def test_all_rules_cover_the_documented_codes(self):
        assert [rule.code for rule in all_rules()] == [
            "RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006",
            "RPL007"]


# ---------------------------------------------------------------------------
# Self-hosting — the repo passes its own bar
# ---------------------------------------------------------------------------

class TestSelfHost:
    def test_repo_sources_lint_clean(self):
        result = lint_files([str(REPO_SRC)])
        assert result.findings == []
        assert result.files_checked > 50

    def test_tools_entry_point_exits_zero(self):
        repo_root = REPO_SRC.parent.parent
        completed = subprocess.run(
            [sys.executable, str(repo_root / "tools" / "repro_lint.py")],
            capture_output=True, text=True,
            env={**os.environ,
                 "PYTHONPATH": str(repo_root / "src")},
            cwd=str(repo_root))
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert "files clean" in completed.stdout

    def test_every_function_has_a_return_annotation(self):
        # Level 1 of the mypy ratchet (mypy.ini / docs/invariants.md):
        # mypy runs only in CI, so the annotation floor is pinned here.
        missing = []
        for path in sorted(REPO_SRC.rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                        and node.returns is None:
                    missing.append(f"{path.name}:{node.lineno} {node.name}")
        assert missing == []
