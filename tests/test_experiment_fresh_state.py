"""Regression: batch runners must rebuild per-run state fresh from the spec.

The documented PR 3 foot-gun: a stop condition ending a run mid-chunk
leaves the adversary's internal state (RNG position, omission-budget
counters such as ``total_injected``) planned up to one chunk ahead of the
last executed interaction.  An adversary instance *reused* across runs
would therefore start the next run from a drifted position, making
aggregate results depend on run order and chunking.  ``run_spec`` /
``run_spec_batch`` / ``repeat_experiment`` avoid this by building the
scheduler, adversary and predicate fresh from the spec for every run —
pinned here so a future refactor cannot quietly start caching them.
"""

from __future__ import annotations

import pytest

from repro.engine.experiment import repeat_experiment, run_spec, run_spec_batch
from repro.protocols.registry import ExperimentSpec, build_cached

#: A spec whose runs attach a live omission adversary and *stop on
#: convergence* (the default stable-output predicate), i.e. end mid-chunk
#: with near certainty — exactly the scenario of the foot-gun.
ADVERSARIAL_SPEC = ExperimentSpec(
    protocol="leader-election",
    population=6,
    model="I3",
    simulator="skno",
    omission_bound=1,
    omissions=1,
)

RUN_KWARGS = dict(
    base_seed=3, max_steps=150_000, stability_window=50,
    trace_policy="counts-only")


def fingerprint(outcome):
    return (
        outcome.converged,
        outcome.steps_executed,
        outcome.steps_to_convergence,
        outcome.omissions,
        outcome.final_configuration.states,
    )


class TestAdversaryBuiltFreshPerRun:
    def test_make_adversary_returns_a_new_instance_each_call(self):
        built = build_cached(ADVERSARIAL_SPEC)
        first = built.make_adversary(0)
        second = built.make_adversary(0)
        assert first is not None and second is not None
        assert first is not second

    def test_run_spec_is_a_pure_function_of_spec_and_seed(self):
        # Interleave other runs between two executions of run index 1: if
        # any per-run state (adversary, scheduler, predicate) leaked across
        # runs, the repeat would differ.
        first = fingerprint(run_spec(ADVERSARIAL_SPEC, 1, **RUN_KWARGS))
        run_spec(ADVERSARIAL_SPEC, 0, **RUN_KWARGS)
        run_spec(ADVERSARIAL_SPEC, 2, **RUN_KWARGS)
        again = fingerprint(run_spec(ADVERSARIAL_SPEC, 1, **RUN_KWARGS))
        assert first == again

    def test_run_order_cannot_change_outcomes(self):
        forward = [
            fingerprint(outcome) for outcome in run_spec_batch(
                ADVERSARIAL_SPEC, 0, 3, **RUN_KWARGS)]
        backward = [
            fingerprint(run_spec(ADVERSARIAL_SPEC, index, **RUN_KWARGS))
            for index in (2, 1, 0)]
        assert forward == list(reversed(backward))

    @pytest.mark.parametrize("run_chunk", [1, 2])
    def test_repeat_experiment_equals_isolated_runs(self, run_chunk):
        aggregate = repeat_experiment(
            spec=ADVERSARIAL_SPEC, runs=3, jobs=1, run_chunk=run_chunk,
            **RUN_KWARGS)
        isolated = [
            run_spec(ADVERSARIAL_SPEC, index, **RUN_KWARGS)
            for index in range(3)]
        assert aggregate.runs == 3
        assert aggregate.successes == sum(
            1 for outcome in isolated if outcome.converged)
        assert aggregate.convergence_steps == [
            outcome.steps_to_convergence for outcome in isolated
            if outcome.converged]
