"""Unit tests for the memory accounting helpers."""

import pytest

from repro.core.memory import (
    configuration_bits,
    max_bits_per_agent,
    sid_state_bound_bits,
    skno_state_bound_bits,
    state_bits,
)
from repro.core.sid import SIDState
from repro.core.skno import SKnOSimulator, SKnOState, StateToken
from repro.protocols.catalog.pairing import PairingProtocol
from repro.protocols.protocol import ProtocolError, PopulationProtocol
from repro.protocols.state import Configuration


class TestStateBits:
    def test_primitives(self):
        assert state_bits(None) == 1
        assert state_bits(True) == 1
        assert state_bits(0) >= 1
        assert state_bits(255) >= 8
        assert state_bits("ab") == 16
        assert state_bits(1.5) == 64
        assert state_bits(b"xyz") == 24

    def test_bigger_values_cost_more(self):
        assert state_bits(2**20) > state_bits(2)
        assert state_bits("a long string here") > state_bits("a")

    def test_containers(self):
        assert state_bits((1, 2, 3)) > state_bits((1,))
        assert state_bits({"k": 1}) > state_bits({})
        assert state_bits([1, 2]) == state_bits((1, 2))

    def test_dataclasses(self):
        small = SKnOState(sim="c")
        large = SKnOState(sim="c", sending=tuple(StateToken("c", i) for i in range(1, 9)))
        assert state_bits(large) > state_bits(small)

    def test_sid_state(self):
        state = SIDState(my_id=3, sim="c")
        assert state_bits(state) > 0

    def test_fallback_to_repr(self):
        class Opaque:
            def __repr__(self):
                return "opaque-object"

        assert state_bits(Opaque()) == 8 * len("opaque-object")


class TestConfigurationBits:
    def test_sum_over_agents(self):
        config = Configuration(["ab", "ab"])
        assert configuration_bits(config) == 2 * state_bits("ab")

    def test_max_bits_per_agent(self):
        configs = [Configuration(["a", "abc"]), Configuration(["a", "a"])]
        assert max_bits_per_agent(configs) == state_bits("abc")


class TestTheoreticalBounds:
    def test_skno_bound_grows_linearly_in_o(self):
        protocol = PairingProtocol()
        bounds = [skno_state_bound_bits(protocol, 16, o) for o in range(4)]
        differences = [b - a for a, b in zip(bounds, bounds[1:])]
        assert len(set(differences)) == 1, "growth in o must be exactly linear"

    def test_skno_bound_grows_logarithmically_in_n(self):
        protocol = PairingProtocol()
        assert skno_state_bound_bits(protocol, 16, 1) == skno_state_bound_bits(protocol, 9, 1)
        assert skno_state_bound_bits(protocol, 1024, 1) > skno_state_bound_bits(protocol, 16, 1)

    def test_skno_bound_input_validation(self):
        protocol = PairingProtocol()
        with pytest.raises(ValueError):
            skno_state_bound_bits(protocol, 0, 1)
        with pytest.raises(ValueError):
            skno_state_bound_bits(protocol, 4, -1)

    def test_skno_bound_requires_finite_protocol(self):
        class Unbounded(PopulationProtocol):
            def delta(self, starter, reactor):
                return starter, reactor

        with pytest.raises(ProtocolError):
            skno_state_bound_bits(Unbounded(), 4, 1)

    def test_sid_bound_grows_logarithmically_in_n(self):
        protocol = PairingProtocol()
        assert sid_state_bound_bits(protocol, 1 << 10) > sid_state_bound_bits(protocol, 1 << 3)
        with pytest.raises(ValueError):
            sid_state_bound_bits(protocol, 0)


class TestObservedVersusBound:
    def test_skno_observed_memory_grows_with_omission_bound(self):
        """Observed per-agent state sizes grow with o, as Theorem 4.1 predicts."""
        from repro.engine.engine import SimulationEngine
        from repro.interaction.models import get_model
        from repro.scheduling.scheduler import RandomScheduler

        protocol = PairingProtocol()
        observed = []
        for omission_bound in (0, 2, 4):
            simulator = SKnOSimulator(protocol, omission_bound=omission_bound)
            config = simulator.initial_configuration(Configuration(["c", "c", "p", "p"]))
            engine = SimulationEngine(simulator, get_model("I3"), RandomScheduler(4, seed=1))
            trace = engine.run(config, max_steps=400)
            observed.append(max_bits_per_agent(trace.configurations()))
        assert observed[0] < observed[1] < observed[2]
