"""Property-based tests for SID and the naming protocol (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.naming import KnownSizeSimulator, SIMULATING
from repro.core.sid import AVAILABLE, LOCKED, PAIRING, SIDSimulator
from repro.core.verification import verify_simulation
from repro.engine.engine import SimulationEngine
from repro.interaction.models import IO
from repro.protocols.catalog.pairing import PairingProtocol
from repro.protocols.state import Configuration
from repro.scheduling.runs import Interaction, Run

protocol = PairingProtocol()


@st.composite
def io_scenario(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    length = draw(st.integers(min_value=0, max_value=80))
    pairs = draw(
        st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)),
                 min_size=length, max_size=length))
    consumers = draw(st.integers(min_value=1, max_value=n - 1))
    return n, pairs, consumers


def build_run(pairs, n):
    interactions = []
    for starter, reactor in pairs:
        starter, reactor = starter % n, reactor % n
        if starter == reactor:
            reactor = (reactor + 1) % n
        interactions.append(Interaction(starter, reactor))
    return Run(interactions)


class TestSIDProperties:
    @given(io_scenario())
    @settings(max_examples=60, deadline=None)
    def test_pairing_safety_always_holds(self, scenario):
        n, pairs, consumers = scenario
        simulator = SIDSimulator(protocol)
        p_config = Configuration(["c"] * consumers + ["p"] * (n - consumers))
        config = simulator.initial_configuration(p_config)
        engine = SimulationEngine(simulator, IO, scheduler=None)
        trace = engine.replay(config, build_run(pairs, n))
        producers = n - consumers
        for configuration in trace.projected_configurations(simulator.project):
            assert configuration.count("cs") <= producers

    @given(io_scenario())
    @settings(max_examples=60, deadline=None)
    def test_ids_never_change(self, scenario):
        n, pairs, consumers = scenario
        simulator = SIDSimulator(protocol)
        p_config = Configuration(["c"] * consumers + ["p"] * (n - consumers))
        config = simulator.initial_configuration(p_config)
        engine = SimulationEngine(simulator, IO, scheduler=None)
        trace = engine.replay(config, build_run(pairs, n))
        for configuration in trace.configurations():
            assert [state.my_id for state in configuration] == list(range(n))

    @given(io_scenario())
    @settings(max_examples=60, deadline=None)
    def test_locked_agents_always_have_a_partner_pointing_back_or_done(self, scenario):
        """A locked agent's partner is either still pairing with it (the
        simulated interaction is in flight) or has already completed it."""
        n, pairs, consumers = scenario
        simulator = SIDSimulator(protocol)
        p_config = Configuration(["c"] * consumers + ["p"] * (n - consumers))
        config = simulator.initial_configuration(p_config)
        engine = SimulationEngine(simulator, IO, scheduler=None)
        trace = engine.replay(config, build_run(pairs, n))
        for configuration in trace.configurations():
            for state in configuration:
                if state.phase == LOCKED:
                    partner = configuration[state.id_other]
                    assert partner.phase in (PAIRING, AVAILABLE, LOCKED)

    @given(io_scenario())
    @settings(max_examples=40, deadline=None)
    def test_verification_reports_no_violation(self, scenario):
        n, pairs, consumers = scenario
        simulator = SIDSimulator(protocol)
        p_config = Configuration(["c"] * consumers + ["p"] * (n - consumers))
        config = simulator.initial_configuration(p_config)
        engine = SimulationEngine(simulator, IO, scheduler=None)
        trace = engine.replay(config, build_run(pairs, n))
        report = verify_simulation(simulator, trace)
        assert report.invalid_pairs == 0
        assert report.derived_consistent, report.errors


class TestNamingProperties:
    @given(io_scenario())
    @settings(max_examples=60, deadline=None)
    def test_ids_are_monotone_and_bounded(self, scenario):
        n, pairs, consumers = scenario
        simulator = KnownSizeSimulator(protocol, population_size=n)
        p_config = Configuration(["c"] * consumers + ["p"] * (n - consumers))
        config = simulator.initial_configuration(p_config)
        engine = SimulationEngine(simulator, IO, scheduler=None)
        trace = engine.replay(config, build_run(pairs, n))
        previous_ids = None
        for configuration in trace.configurations():
            ids = KnownSizeSimulator.assigned_ids(configuration)
            assert all(1 <= agent_id <= n for agent_id in ids)
            if previous_ids is not None:
                assert all(new >= old for new, old in zip(ids, previous_ids))
            previous_ids = ids

    @given(io_scenario())
    @settings(max_examples=60, deadline=None)
    def test_simulating_agents_have_unique_ids(self, scenario):
        """Agents that have started simulating never share an id."""
        n, pairs, consumers = scenario
        simulator = KnownSizeSimulator(protocol, population_size=n)
        p_config = Configuration(["c"] * consumers + ["p"] * (n - consumers))
        config = simulator.initial_configuration(p_config)
        engine = SimulationEngine(simulator, IO, scheduler=None)
        trace = engine.replay(config, build_run(pairs, n))
        for configuration in trace.configurations():
            simulating_ids = [
                state.sid.my_id for state in configuration if state.phase == SIMULATING]
            assert len(simulating_ids) == len(set(simulating_ids))

    @given(io_scenario())
    @settings(max_examples=40, deadline=None)
    def test_pairing_safety_through_naming_and_simulation(self, scenario):
        n, pairs, consumers = scenario
        simulator = KnownSizeSimulator(protocol, population_size=n)
        p_config = Configuration(["c"] * consumers + ["p"] * (n - consumers))
        config = simulator.initial_configuration(p_config)
        engine = SimulationEngine(simulator, IO, scheduler=None)
        trace = engine.replay(config, build_run(pairs, n))
        producers = n - consumers
        for configuration in trace.projected_configurations(simulator.project):
            assert configuration.count("cs") <= producers
