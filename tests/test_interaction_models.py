"""Unit tests for the ten interaction models of Figure 1.

The tests pin down the transition relation of every model against small,
hand-written programs, matching the formulas displayed in Figure 1.
"""

import pytest

from repro.interaction.models import (
    ALL_MODELS,
    I1,
    I2,
    I3,
    I4,
    IO,
    IT,
    MODELS_BY_NAME,
    ModelError,
    T1,
    T2,
    T3,
    TW,
    get_model,
)
from repro.interaction.omissions import (
    FULL_OMISSION,
    NO_OMISSION,
    REACTOR_OMISSION,
    STARTER_OMISSION,
    Omission,
)


class TwoWayTestProgram:
    """A two-way program with distinguishable fs / fr / o / h outputs."""

    def fs(self, starter, reactor):
        return ("fs", starter, reactor)

    def fr(self, starter, reactor):
        return ("fr", starter, reactor)

    def on_starter_omission(self, starter):
        return ("o", starter)

    def on_reactor_omission(self, reactor):
        return ("h", reactor)


class OneWayTestProgram:
    """A one-way program with distinguishable g / f / o / h outputs."""

    def g(self, starter):
        return ("g", starter)

    def f(self, starter, reactor):
        return ("f", starter, reactor)

    def on_starter_omission(self, starter):
        return ("o", starter)

    def on_reactor_omission(self, reactor):
        return ("h", reactor)


@pytest.fixture
def two_way_program():
    return TwoWayTestProgram()


@pytest.fixture
def one_way_program():
    return OneWayTestProgram()


class TestLookup:
    def test_all_models_present(self):
        assert {m.name for m in ALL_MODELS} == {
            "TW", "T1", "T2", "T3", "IT", "IO", "I1", "I2", "I3", "I4"
        }

    def test_get_model_case_insensitive(self):
        assert get_model("tw") is TW
        assert get_model("i3") is I3

    def test_get_model_unknown(self):
        with pytest.raises(KeyError):
            get_model("XYZ")

    def test_models_by_name_consistent(self):
        for name, model in MODELS_BY_NAME.items():
            assert model.name == name

    def test_str_and_repr(self):
        assert str(TW) == "TW"
        assert "I3" in repr(I3)


class TestTwoWayModels:
    def test_tw_non_omissive(self, two_way_program):
        result = TW.apply(two_way_program, "s", "r", NO_OMISSION)
        assert result == (("fs", "s", "r"), ("fr", "s", "r"))

    def test_tw_rejects_omissions(self, two_way_program):
        with pytest.raises(ModelError):
            TW.apply(two_way_program, "s", "r", REACTOR_OMISSION)

    def test_tw_rejects_one_way_program(self, one_way_program):
        with pytest.raises(ModelError):
            TW.apply(one_way_program, "s", "r")

    def test_t3_all_four_outcomes(self, two_way_program):
        assert T3.apply(two_way_program, "s", "r", NO_OMISSION) == (
            ("fs", "s", "r"), ("fr", "s", "r"))
        assert T3.apply(two_way_program, "s", "r", STARTER_OMISSION) == (
            ("o", "s"), ("fr", "s", "r"))
        assert T3.apply(two_way_program, "s", "r", REACTOR_OMISSION) == (
            ("fs", "s", "r"), ("h", "r"))
        assert T3.apply(two_way_program, "s", "r", FULL_OMISSION) == (
            ("o", "s"), ("h", "r"))

    def test_t2_reactor_cannot_detect(self, two_way_program):
        assert T2.apply(two_way_program, "s", "r", REACTOR_OMISSION) == (
            ("fs", "s", "r"), "r")
        assert T2.apply(two_way_program, "s", "r", STARTER_OMISSION) == (
            ("o", "s"), ("fr", "s", "r"))
        assert T2.apply(two_way_program, "s", "r", FULL_OMISSION) == (("o", "s"), "r")

    def test_t1_no_detection_at_all(self, two_way_program):
        assert T1.apply(two_way_program, "s", "r", STARTER_OMISSION) == (
            "s", ("fr", "s", "r"))
        assert T1.apply(two_way_program, "s", "r", REACTOR_OMISSION) == (
            ("fs", "s", "r"), "r")
        assert T1.apply(two_way_program, "s", "r", FULL_OMISSION) == ("s", "r")

    def test_two_way_program_without_handlers_defaults_to_identity(self):
        class Bare:
            def fs(self, starter, reactor):
                return "S"

            def fr(self, starter, reactor):
                return "R"

        assert T3.apply(Bare(), "s", "r", FULL_OMISSION) == ("s", "r")


class TestOneWayModels:
    def test_it_applies_g_and_f(self, one_way_program):
        assert IT.apply(one_way_program, "s", "r", NO_OMISSION) == (
            ("g", "s"), ("f", "s", "r"))

    def test_it_rejects_omissions(self, one_way_program):
        with pytest.raises(ModelError):
            IT.apply(one_way_program, "s", "r", REACTOR_OMISSION)

    def test_io_leaves_starter_untouched(self, one_way_program):
        assert IO.apply(one_way_program, "s", "r", NO_OMISSION) == ("s", ("f", "s", "r"))

    def test_one_way_models_reject_starter_side_omission(self, one_way_program):
        with pytest.raises(ModelError):
            I3.apply(one_way_program, "s", "r", STARTER_OMISSION)

    def test_i1_omission_outcome(self, one_way_program):
        assert I1.apply(one_way_program, "s", "r", REACTOR_OMISSION) == (("g", "s"), "r")

    def test_i2_omission_outcome(self, one_way_program):
        assert I2.apply(one_way_program, "s", "r", REACTOR_OMISSION) == (
            ("g", "s"), ("g", "r"))

    def test_i3_omission_outcome(self, one_way_program):
        assert I3.apply(one_way_program, "s", "r", REACTOR_OMISSION) == (
            ("g", "s"), ("h", "r"))

    def test_i4_omission_outcome(self, one_way_program):
        assert I4.apply(one_way_program, "s", "r", REACTOR_OMISSION) == (
            ("o", "s"), ("g", "r"))

    def test_omissive_one_way_non_omissive_case_matches_it(self, one_way_program):
        for model in (I1, I2, I3, I4):
            assert model.apply(one_way_program, "s", "r", NO_OMISSION) == IT.apply(
                one_way_program, "s", "r", NO_OMISSION
            )

    def test_one_way_models_reject_two_way_program(self, two_way_program):
        with pytest.raises(ModelError):
            IT.apply(two_way_program, "s", "r")


class TestTransitionRelations:
    def test_admissible_omissions_non_omissive_models(self):
        assert TW.admissible_omissions() == [NO_OMISSION]
        assert IT.admissible_omissions() == [NO_OMISSION]
        assert IO.admissible_omissions() == [NO_OMISSION]

    def test_admissible_omissions_one_way(self):
        assert I3.admissible_omissions() == [NO_OMISSION, REACTOR_OMISSION]

    def test_admissible_omissions_two_way(self):
        assert set(T3.admissible_omissions()) == {
            NO_OMISSION, STARTER_OMISSION, REACTOR_OMISSION, FULL_OMISSION}

    def test_relation_sizes_match_figure_1(self, one_way_program, two_way_program):
        # Figure 1 lists 4 outcomes for T3, 2 for each one-way omissive model.
        assert len(T3.transition_relation(two_way_program, "s", "r")) == 4
        for model in (I1, I2, I3, I4):
            assert len(model.transition_relation(one_way_program, "s", "r")) == 2
        assert len(TW.transition_relation(two_way_program, "s", "r")) == 1

    def test_io_relation_is_special_case_of_it(self):
        """With g = identity, the IO relation coincides with the IT relation."""

        class IdentityG(OneWayTestProgram):
            def g(self, starter):
                return starter

        program = IdentityG()
        assert IO.transition_relation(program, "s", "r") == IT.transition_relation(
            program, "s", "r"
        )

    def test_i1_relation_is_special_case_of_i3(self):
        """With h = identity, the I3 relation coincides with the I1 relation."""

        class IdentityH(OneWayTestProgram):
            def on_reactor_omission(self, reactor):
                return reactor

        program = IdentityH()
        assert I3.transition_relation(program, "s", "r") == I1.transition_relation(
            program, "s", "r"
        )

    def test_i2_relation_is_special_case_of_i3(self):
        """With h = g, the I3 relation coincides with the I2 relation."""

        class HEqualsG(OneWayTestProgram):
            def on_reactor_omission(self, reactor):
                return self.g(reactor)

        program = HEqualsG()
        assert I3.transition_relation(program, "s", "r") == I2.transition_relation(
            program, "s", "r"
        )

    def test_t1_relation_is_special_case_of_t3(self):
        """With o = h = identity, the T3 relation is contained in T1's closure."""

        class NoDetection(TwoWayTestProgram):
            def on_starter_omission(self, starter):
                return starter

            def on_reactor_omission(self, reactor):
                return reactor

        program = NoDetection()
        t3_relation = T3.transition_relation(program, "s", "r")
        t1_relation = T1.transition_relation(program, "s", "r")
        assert t3_relation == t1_relation


class TestMetadataFlags:
    @pytest.mark.parametrize("model", [IT, IO, I1, I2, I3, I4])
    def test_one_way_flags(self, model):
        assert model.one_way

    @pytest.mark.parametrize("model", [TW, T1, T2, T3])
    def test_two_way_flags(self, model):
        assert not model.one_way

    @pytest.mark.parametrize("model", [T1, T2, T3, I1, I2, I3, I4])
    def test_omissive_flags(self, model):
        assert model.allows_omissions

    @pytest.mark.parametrize("model", [TW, IT, IO])
    def test_non_omissive_flags(self, model):
        assert not model.allows_omissions

    def test_detection_capability_table(self):
        assert T3.starter_detects_omission and T3.reactor_detects_omission
        assert T2.starter_detects_omission and not T2.reactor_detects_omission
        assert not T1.starter_detects_omission and not T1.reactor_detects_omission
        assert not I3.starter_detects_omission and I3.reactor_detects_omission
        assert I4.starter_detects_omission and not I4.reactor_detects_omission
        assert not IO.starter_detects_proximity
        assert IT.starter_detects_proximity
