"""Property-based tests for the protocol catalog (hypothesis).

Each property is a protocol-level invariant that must hold for *every* pair
of states, not just the ones unit tests happen to pick.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.protocols.catalog.averaging import AveragingProtocol
from repro.protocols.catalog.counting import ModuloCountingProtocol, ThresholdProtocol
from repro.protocols.catalog.leader_election import LEADER, LeaderElectionProtocol
from repro.protocols.catalog.majority import A, B, ExactMajorityProtocol
from repro.protocols.catalog.pairing import CRITICAL, PairingProtocol

pairing = PairingProtocol()
leader = LeaderElectionProtocol()
majority = ExactMajorityProtocol()
averaging = AveragingProtocol(max_value=10)
threshold = ThresholdProtocol(threshold=4)
modulo = ModuloCountingProtocol(modulus=4, target=2)

pairing_states = st.sampled_from(sorted(pairing.states))
leader_states = st.sampled_from(sorted(leader.states))
majority_states = st.sampled_from(sorted(majority.states))
averaging_states = st.sampled_from(sorted(averaging.states))
threshold_states = st.sampled_from(sorted(threshold.states, key=repr))
modulo_states = st.sampled_from(sorted(modulo.states, key=repr))


class TestClosureProperties:
    @given(pairing_states, pairing_states)
    def test_pairing_closed(self, starter, reactor):
        new_starter, new_reactor = pairing.delta(starter, reactor)
        assert new_starter in pairing.states
        assert new_reactor in pairing.states

    @given(threshold_states, threshold_states)
    def test_threshold_closed(self, starter, reactor):
        new_starter, new_reactor = threshold.delta(starter, reactor)
        assert new_starter in threshold.states
        assert new_reactor in threshold.states

    @given(modulo_states, modulo_states)
    def test_modulo_closed(self, starter, reactor):
        new_starter, new_reactor = modulo.delta(starter, reactor)
        assert new_starter in modulo.states
        assert new_reactor in modulo.states


class TestConservationProperties:
    @given(pairing_states, pairing_states)
    def test_pairing_critical_plus_consumer_is_monotone_sound(self, starter, reactor):
        """An interaction creates at most one new critical agent, and only by
        consuming a producer."""
        before = [starter, reactor]
        after = list(pairing.delta(starter, reactor))
        new_critical = after.count(CRITICAL) - before.count(CRITICAL)
        consumed_producers = before.count("p") - after.count("p")
        assert new_critical <= max(0, consumed_producers)

    @given(leader_states, leader_states)
    def test_leader_count_monotone_and_positive(self, starter, reactor):
        before = [starter, reactor].count(LEADER)
        after = list(leader.delta(starter, reactor)).count(LEADER)
        assert after <= before
        if before > 0:
            assert after > 0

    @given(majority_states, majority_states)
    def test_majority_strong_balance_invariant(self, starter, reactor):
        def balance(states):
            return sum(1 for s in states if s == A) - sum(1 for s in states if s == B)

        assert balance([starter, reactor]) == balance(majority.delta(starter, reactor))

    @given(averaging_states, averaging_states)
    def test_averaging_total_conserved_and_gap_shrinks(self, starter, reactor):
        new_starter, new_reactor = averaging.delta(starter, reactor)
        assert new_starter + new_reactor == starter + reactor
        assert abs(new_starter - new_reactor) <= 1

    @given(threshold_states, threshold_states)
    def test_threshold_weight_never_created(self, starter, reactor):
        new_starter, new_reactor = threshold.delta(starter, reactor)
        assert new_starter[0] + new_reactor[0] <= starter[0] + reactor[0]

    @given(threshold_states, threshold_states)
    def test_threshold_flag_is_monotone(self, starter, reactor):
        new_starter, new_reactor = threshold.delta(starter, reactor)
        if starter[1] or reactor[1]:
            assert new_starter[1] and new_reactor[1]

    @given(modulo_states, modulo_states)
    def test_modulo_collector_count_monotone(self, starter, reactor):
        def collectors(states):
            return sum(1 for kind, _ in states if kind == "collector")

        before = collectors([starter, reactor])
        after = collectors(modulo.delta(starter, reactor))
        assert after <= before
        if before > 0:
            assert after > 0
