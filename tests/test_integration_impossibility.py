"""Integration tests for the impossibility results (Theorems 3.1, 3.2, 3.3).

These tests execute the paper's adversarial constructions against the
concrete simulators of Section 4 and check that the predicted failures
actually materialise:

* Lemma 1 / Theorem 3.1: a number of omissions equal to the simulator's FTT
  suffices to violate the safety of the Pairing problem.
* Theorem 3.3: the same attack bounds the graceful-degradation threshold.
* Theorem 3.2: in the weak models ``I1``/``I2``/``T1`` a *single* omission
  already prevents correct simulation (for the token-based ``SKnO`` the
  failure mode is a permanent stall).
"""

import pytest

from repro.adversary.constructions import (
    ConstructionError,
    Lemma1Construction,
    no1_liveness_attack,
)
from repro.adversary.ftt import fastest_transition_time
from repro.core.skno import SKnOSimulator
from repro.interaction.adapters import one_way_as_two_way
from repro.interaction.models import get_model
from repro.problems.pairing import PairingProblem
from repro.protocols.catalog.leader_election import LeaderElectionProtocol
from repro.protocols.catalog.pairing import PairingProtocol
from repro.protocols.state import Configuration


@pytest.fixture
def pairing_protocol():
    return PairingProtocol()


class TestLemma1Attack:
    @pytest.mark.parametrize("omission_bound", [1, 2])
    def test_safety_violation_with_ftt_omissions(self, pairing_protocol, omission_bound):
        simulator = one_way_as_two_way(
            SKnOSimulator(pairing_protocol, omission_bound=omission_bound))
        construction = Lemma1Construction(simulator, get_model("T3"), q0="p", q1="c")
        result = construction.execute()
        # The attack uses exactly FTT = 2(o+1) omissions...
        assert result.ftt == 2 * (omission_bound + 1)
        assert result.omissions_used == result.ftt
        # ...which exceeds the bound the simulator was designed for...
        assert result.omissions_used > omission_bound
        # ...and produces more critical consumers than there are producers.
        assert result.safety_violated
        assert result.q1_to_q1_prime_transitions >= result.producers + 1

    def test_population_size_matches_lemma(self, pairing_protocol):
        simulator = one_way_as_two_way(SKnOSimulator(pairing_protocol, omission_bound=1))
        construction = Lemma1Construction(simulator, get_model("T3"), q0="p", q1="c")
        result = construction.execute()
        assert result.population == 2 * result.ftt + 2

    def test_attack_run_projected_trace_violates_pairing_problem(self, pairing_protocol):
        simulator = one_way_as_two_way(SKnOSimulator(pairing_protocol, omission_bound=1))
        construction = Lemma1Construction(simulator, get_model("T3"), q0="p", q1="c")
        result = construction.execute()
        problem = PairingProblem(
            consumers=result.population - result.producers, producers=result.producers)
        report = problem.check(
            result.trace.projected_configurations(simulator.project))
        assert not report.safe, "the Pairing safety invariant must be violated"

    def test_summary_mentions_violation(self, pairing_protocol):
        simulator = one_way_as_two_way(SKnOSimulator(pairing_protocol, omission_bound=1))
        result = Lemma1Construction(simulator, get_model("T3"), q0="p", q1="c").execute()
        assert "SAFETY VIOLATED" in result.summary()

    def test_requires_symmetric_protocol(self):
        protocol = LeaderElectionProtocol()
        simulator = one_way_as_two_way(SKnOSimulator(protocol, omission_bound=1))
        with pytest.raises(ConstructionError):
            Lemma1Construction(simulator, get_model("T3"), q0="L", q1="F")

    def test_requires_omissive_two_way_model(self, pairing_protocol):
        simulator = one_way_as_two_way(SKnOSimulator(pairing_protocol, omission_bound=1))
        with pytest.raises(ConstructionError):
            Lemma1Construction(simulator, get_model("TW"), q0="p", q1="c")
        with pytest.raises(ConstructionError):
            Lemma1Construction(simulator, get_model("I3"), q0="p", q1="c")

    def test_ik_runs_have_exactly_one_omission(self, pairing_protocol):
        simulator = one_way_as_two_way(SKnOSimulator(pairing_protocol, omission_bound=1))
        construction = Lemma1Construction(simulator, get_model("T3"), q0="p", q1="c")
        ftt = construction.compute_ftt()
        for k in range(ftt.ftt):
            ik_run, commit_time = construction.build_ik(ftt.witness, k)
            assert ik_run.omission_count() == 1
            assert 0 < commit_time <= len(ik_run)

    def test_graceful_degradation_threshold(self, pairing_protocol):
        """Theorem 3.3: the attack works for every simulator with FTT >= 2,
        so no gracefully degrading simulator can promise a threshold above 1."""
        for omission_bound in (1, 2):
            simulator = one_way_as_two_way(
                SKnOSimulator(pairing_protocol, omission_bound=omission_bound))
            result = Lemma1Construction(
                simulator, get_model("T3"), q0="p", q1="c").execute()
            assert result.ftt >= 2
            assert result.safety_violated


class TestTheorem32NO1:
    """One omission in the weak models I1/I2/T1 already breaks the simulation."""

    def _pairing_config(self):
        return Configuration(["p", "c"])

    @pytest.mark.parametrize("model_name", ["I1", "I2"])
    def test_single_omission_stalls_skno_in_weak_one_way_models(
            self, pairing_protocol, model_name):
        simulator = SKnOSimulator(pairing_protocol, omission_bound=1)
        result = no1_liveness_attack(
            simulator, model_name, target_state="cs", expected_committed=1,
            initial_p_configuration=self._pairing_config(), safety_bound=1,
            max_steps=20_000)
        assert result.omissions_used == 1
        assert result.liveness_violated or result.safety_violated
        assert "VIOLATED" in result.summary()

    def test_single_omission_stalls_skno_in_t1(self, pairing_protocol):
        simulator = one_way_as_two_way(SKnOSimulator(pairing_protocol, omission_bound=1))
        result = no1_liveness_attack(
            simulator, "T1", target_state="cs", expected_committed=1,
            initial_p_configuration=self._pairing_config(), safety_bound=1,
            max_steps=20_000)
        assert result.liveness_violated or result.safety_violated

    @pytest.mark.parametrize("model_name", ["I3", "I4"])
    def test_strong_models_survive_the_same_single_omission(
            self, pairing_protocol, model_name):
        """Control experiment: with detection (I3/I4) the same attack is harmless."""
        simulator = SKnOSimulator(pairing_protocol, omission_bound=1, variant=model_name)
        result = no1_liveness_attack(
            simulator, model_name, target_state="cs", expected_committed=1,
            initial_p_configuration=self._pairing_config(), safety_bound=1,
            max_steps=20_000)
        assert not result.liveness_violated
        assert not result.safety_violated

    def test_rejects_non_omissive_model(self, pairing_protocol):
        simulator = SKnOSimulator(pairing_protocol, omission_bound=1)
        with pytest.raises(ConstructionError):
            no1_liveness_attack(
                simulator, "IO", target_state="cs", expected_committed=1,
                initial_p_configuration=self._pairing_config())


class TestFTTOmissionConnection:
    def test_the_attack_uses_exactly_ftt_omissions(self, pairing_protocol):
        """The headline message of Section 3: FTT omissions suffice to fool a simulator."""
        simulator = one_way_as_two_way(SKnOSimulator(pairing_protocol, omission_bound=1))
        c0 = Configuration([simulator.initial_state("p"), simulator.initial_state("c")])
        ftt = fastest_transition_time(simulator, get_model("T3"), c0)
        result = Lemma1Construction(simulator, get_model("T3"), q0="p", q1="c").execute()
        assert result.omissions_used == ftt.ftt
