"""Property-based equivalence: fast-path core vs. a legacy reference executor.

The fast-path core (:mod:`repro.engine.fastpath`) mutates an array-backed
buffer in place and defers trace construction to the freeze boundary.  This
suite pins its semantics against an independent reference implementation
written the way the seed engine worked — an immutable
:class:`Configuration` threaded through :meth:`Trace.record`, one O(n) copy
per step — over random catalog protocols × interaction models × seeds,
including adversary-injected runs.

Final configurations, per-step trace contents, omission counts and
convergence step counts must all be identical.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.omission import BoundedOmissionAdversary, UOAdversary
from repro.core.trivial import TrivialTwoWaySimulator
from repro.engine.convergence import run_until_stable
from repro.engine.engine import SimulationEngine
from repro.engine.fastpath import AgentCountPredicate
from repro.engine.trace import Trace
from repro.interaction.models import TW, get_model
from repro.protocols.catalog.epidemic import (
    INFORMED,
    SUSCEPTIBLE,
    EpidemicProtocol,
    OneWayEpidemicProtocol,
)
from repro.protocols.catalog.leader_election import LEADER, LeaderElectionProtocol
from repro.protocols.catalog.majority import A, ExactMajorityProtocol
from repro.protocols.state import Configuration
from repro.scheduling.scheduler import RandomScheduler, SchedulerExhausted


# ---------------------------------------------------------------------------
# reference implementation (seed-style: immutable configurations, Trace.record)
# ---------------------------------------------------------------------------


def legacy_execute(program, model, scheduler, adversary, initial, max_steps,
                   predicate=None, stability_window=0):
    """Seed-style executor: O(n) immutable configuration copy per step.

    Implements the documented budget semantics (a drawn scheduled
    interaction always executes; surplus injections are discarded) and the
    seed's convergence-streak accounting, entirely independently of
    ``repro.engine.fastpath``.
    """
    trace = Trace(initial)
    configuration = initial
    scheduler_step = 0
    executed = 0
    consecutive = 0
    first_of_streak = None
    target = stability_window + 1

    if predicate is not None and predicate(initial):
        consecutive = 1
        first_of_streak = 0

    while executed < max_steps and consecutive < target:
        try:
            scheduled = scheduler.next_interaction(scheduler_step)
        except SchedulerExhausted:
            break
        scheduler_step += 1

        batch = [scheduled]
        if adversary is not None:
            injected = adversary.interactions_before(
                step=scheduler_step - 1, scheduled=scheduled, n=len(configuration))
            batch = list(injected[: max_steps - executed - 1]) + [scheduled]

        for interaction in batch:
            starter_pre = configuration[interaction.starter]
            reactor_pre = configuration[interaction.reactor]
            starter_post, reactor_post = model.apply(
                program, starter_pre, reactor_pre, interaction.omission)
            trace.record(interaction, starter_post, reactor_post)
            configuration = trace.final_configuration
            executed += 1
            if predicate is not None:
                if predicate(configuration):
                    if consecutive == 0:
                        first_of_streak = executed
                    consecutive += 1
                    if consecutive >= target:
                        break
                else:
                    consecutive = 0
                    first_of_streak = None

    converged = consecutive >= target
    return {
        "trace": trace,
        "final": trace.final_configuration,
        "steps": executed,
        "omissions": trace.omission_count(),
        "converged": converged,
        "steps_to_convergence": first_of_streak if converged else None,
    }


# ---------------------------------------------------------------------------
# random system builders
# ---------------------------------------------------------------------------


def _tw_epidemic(n, seed):
    program = TrivialTwoWaySimulator(EpidemicProtocol())
    initial = Configuration([INFORMED] + [SUSCEPTIBLE] * (n - 1))
    predicate = AgentCountPredicate(lambda s: s == INFORMED)
    return program, TW, initial, None, predicate


def _tw_leader(n, seed):
    program = TrivialTwoWaySimulator(LeaderElectionProtocol())
    initial = Configuration([LEADER] * n)
    predicate = AgentCountPredicate(lambda s: s == LEADER, target=1)
    return program, TW, initial, None, predicate


def _tw_majority(n, seed):
    protocol = ExactMajorityProtocol()
    program = TrivialTwoWaySimulator(protocol)
    count_a = n // 2 + 1
    initial = protocol.initial_configuration(count_a, n - count_a)
    predicate = AgentCountPredicate(lambda s: protocol.output(s) == A)
    return program, TW, initial, None, predicate


def _io_epidemic(n, seed):
    program = OneWayEpidemicProtocol()
    initial = Configuration([INFORMED] + [SUSCEPTIBLE] * (n - 1))
    predicate = AgentCountPredicate(lambda s: s == INFORMED)
    return program, get_model("IO"), initial, None, predicate


def _i1_epidemic_bounded_adversary(n, seed):
    model = get_model("I1")
    program = OneWayEpidemicProtocol()
    initial = Configuration([INFORMED] + [SUSCEPTIBLE] * (n - 1))
    adversary = lambda: BoundedOmissionAdversary(model, max_omissions=3, seed=seed)
    predicate = AgentCountPredicate(lambda s: s == INFORMED)
    return program, model, initial, adversary, predicate


def _i3_epidemic_flooding_adversary(n, seed):
    model = get_model("I3")
    program = OneWayEpidemicProtocol()
    initial = Configuration([INFORMED] + [SUSCEPTIBLE] * (n - 1))
    adversary = lambda: UOAdversary(model, rate=0.6, max_per_gap=4, seed=seed)
    predicate = AgentCountPredicate(lambda s: s == INFORMED)
    return program, model, initial, adversary, predicate


SYSTEMS = [
    _tw_epidemic,
    _tw_leader,
    _tw_majority,
    _io_epidemic,
    _i1_epidemic_bounded_adversary,
    _i3_epidemic_flooding_adversary,
]


def _build(system_index, n, seed):
    program, model, initial, adversary_factory, predicate = SYSTEMS[system_index](n, seed)
    adversary = adversary_factory() if adversary_factory else None
    engine = SimulationEngine(program, model, RandomScheduler(n, seed=seed), adversary=adversary)
    return engine, initial, predicate


system_indices = st.integers(min_value=0, max_value=len(SYSTEMS) - 1)
populations = st.integers(min_value=3, max_value=9)
seeds = st.integers(min_value=0, max_value=10_000)
budgets = st.integers(min_value=0, max_value=400)


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------


class TestRunEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(system=system_indices, n=populations, seed=seeds, max_steps=budgets)
    def test_counts_only_matches_legacy_executor(self, system, n, seed, max_steps):
        engine, initial, _ = _build(system, n, seed)
        result = engine.execute(initial, max_steps, trace_policy="counts-only")

        reference_engine, reference_initial, _ = _build(system, n, seed)
        reference = legacy_execute(
            reference_engine.program, reference_engine.model, reference_engine.scheduler,
            reference_engine.adversary, reference_initial, max_steps)

        assert result.steps == reference["steps"]
        assert result.omissions == reference["omissions"]
        assert result.final_configuration == reference["final"]

    @settings(max_examples=40, deadline=None)
    @given(system=system_indices, n=populations, seed=seeds, max_steps=budgets)
    def test_full_trace_matches_legacy_executor_step_by_step(self, system, n, seed, max_steps):
        engine, initial, _ = _build(system, n, seed)
        trace = engine.run(initial, max_steps)

        reference_engine, reference_initial, _ = _build(system, n, seed)
        reference = legacy_execute(
            reference_engine.program, reference_engine.model, reference_engine.scheduler,
            reference_engine.adversary, reference_initial, max_steps)

        assert len(trace) == reference["steps"]
        assert trace.final_configuration == reference["final"]
        assert trace.omission_count() == reference["omissions"]
        for fast_step, reference_step in zip(trace, reference["trace"]):
            assert fast_step == reference_step


class TestConvergenceEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(system=system_indices, n=populations, seed=seeds,
           window=st.integers(min_value=0, max_value=30),
           policy=st.sampled_from(["full", "counts-only"]))
    def test_run_until_stable_matches_legacy_executor(self, system, n, seed, window, policy):
        engine, initial, predicate = _build(system, n, seed)
        outcome = run_until_stable(
            engine, initial, predicate, max_steps=2_000,
            stability_window=window, trace_policy=policy)

        reference_engine, reference_initial, _ = _build(system, n, seed)
        # The reference predicate is a plain full-rescan callable, so this
        # also checks incremental predicates against rescanning semantics.
        informed_like = {
            0: lambda c: c.count(INFORMED) == len(c),
            1: lambda c: c.count(LEADER) == 1,
            3: lambda c: c.count(INFORMED) == len(c),
            4: lambda c: c.count(INFORMED) == len(c),
            5: lambda c: c.count(INFORMED) == len(c),
        }
        if system == 2:
            protocol = ExactMajorityProtocol()
            reference_predicate = lambda c: all(protocol.output(s) == A for s in c)
        else:
            reference_predicate = informed_like[system]
        reference = legacy_execute(
            reference_engine.program, reference_engine.model, reference_engine.scheduler,
            reference_engine.adversary, reference_initial, 2_000,
            predicate=reference_predicate, stability_window=window)

        assert outcome.converged == reference["converged"]
        assert outcome.steps_executed == reference["steps"]
        assert outcome.steps_to_convergence == reference["steps_to_convergence"]
        assert outcome.final_configuration == reference["final"]
        assert outcome.omissions == reference["omissions"]
        if policy == "full":
            assert outcome.trace.omission_count() == reference["omissions"]
