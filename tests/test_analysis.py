"""Unit tests for the analysis helpers: results map, reporting and statistics."""

import statistics

import pytest

from repro.analysis.reporting import format_results_map, format_table
from repro.analysis.results_map import (
    ASSUMPTIONS,
    Feasibility,
    RESULTS_MAP,
    feasibility,
    models_in_map,
    results_map,
)
from repro.analysis.statistics import (
    correlation_with_log,
    growth_ratio,
    is_monotone_nondecreasing,
    summarize_counts,
)


class TestResultsMap:
    def test_full_coverage_of_models_and_assumptions(self):
        cells = results_map()
        assert len(cells) == len(models_in_map()) * len(ASSUMPTIONS)
        for model in models_in_map():
            for assumption in ASSUMPTIONS:
                assert (model, assumption) in cells

    def test_headline_results(self):
        # Theorem 4.1 and Corollary 1.
        assert feasibility("I3", "knowledge-of-omissions") is Feasibility.POSSIBLE
        assert feasibility("I4", "knowledge-of-omissions") is Feasibility.POSSIBLE
        assert feasibility("IT", "knowledge-of-omissions") is Feasibility.POSSIBLE
        # Theorem 3.1: impossibility with infinite memory in omissive models.
        assert feasibility("T3", "infinite-memory") is Feasibility.IMPOSSIBLE
        assert feasibility("I3", "infinite-memory") is Feasibility.IMPOSSIBLE
        # Theorem 3.2: the weak models stay impossible even knowing the bound.
        assert feasibility("I1", "knowledge-of-omissions") is Feasibility.IMPOSSIBLE
        assert feasibility("I2", "knowledge-of-omissions") is Feasibility.IMPOSSIBLE
        # Theorems 4.5 and 4.6.
        assert feasibility("IO", "unique-ids") is Feasibility.POSSIBLE
        assert feasibility("IO", "knowledge-of-n") is Feasibility.POSSIBLE
        # The open question left by the paper.
        assert feasibility("T2", "knowledge-of-omissions") is Feasibility.OPEN

    def test_tw_is_trivial_everywhere(self):
        for assumption in ASSUMPTIONS:
            assert feasibility("TW", assumption) is Feasibility.TRIVIAL

    def test_unknown_cell_raises(self):
        with pytest.raises(KeyError):
            feasibility("I3", "telepathy")

    def test_every_cell_cites_a_source(self):
        for cell in RESULTS_MAP:
            assert cell.source

    def test_labels(self):
        cells = results_map()
        assert cells[("I3", "knowledge-of-omissions")].label().startswith("YES")
        assert cells[("T1", "infinite-memory")].label().startswith("NO")
        assert cells[("T2", "knowledge-of-omissions")].label().startswith("?")

    def test_case_insensitive_lookup(self):
        assert feasibility("io", "unique-ids") is Feasibility.POSSIBLE


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1, "all rows equal width"
        assert "long-name" in table

    def test_format_table_empty_rows(self):
        table = format_table(["x"], [])
        assert "x" in table

    def test_format_results_map_contains_all_models(self):
        rendered = format_results_map()
        for model in models_in_map():
            assert model in rendered

    def test_format_results_map_overrides(self):
        rendered = format_results_map(overrides={("I3", "knowledge-of-omissions"): "CHECKED"})
        assert "CHECKED" in rendered


class TestStatistics:
    def test_summarize_counts(self):
        stats = summarize_counts([1, 2, 3, 4])
        assert stats.count == 4
        assert stats.mean == 2.5
        assert stats.median == 2.5
        assert stats.minimum == 1
        assert stats.maximum == 4
        assert "mean=" in str(stats)

    def test_summarize_empty(self):
        assert summarize_counts([]) is None

    def test_stdev_is_sample_standard_deviation(self):
        stats = summarize_counts([1, 2, 3, 4])
        assert stats.stdev == pytest.approx(statistics.stdev([1, 2, 3, 4]))
        assert stats.stdev > statistics.pstdev([1, 2, 3, 4])

    def test_stdev_of_single_measurement_is_zero(self):
        stats = summarize_counts([7])
        assert stats.count == 1
        assert stats.stdev == 0.0

    def test_growth_ratio(self):
        assert growth_ratio([1, 2, 4, 8]) == pytest.approx(2.0)
        assert growth_ratio([5]) is None
        assert growth_ratio([0, 1]) is None

    def test_monotone(self):
        assert is_monotone_nondecreasing([1, 1, 2, 3])
        assert not is_monotone_nondecreasing([1, 3, 2])
        assert is_monotone_nondecreasing([3, 2.95, 4], tolerance=0.1)

    def test_correlation_with_log(self):
        import math

        sizes = [4, 8, 16, 32, 64]
        values = [math.log2(size) for size in sizes]
        assert correlation_with_log(values, sizes) == pytest.approx(1.0)
        assert correlation_with_log([1, 2], [1, 2]) is None
        assert correlation_with_log([1, 1, 1], [2, 4, 8]) is None
