"""Unit tests for the Pairing protocol (Definition 5's two-way solution)."""

import pytest

from repro.protocols.catalog.pairing import (
    BOTTOM,
    CONSUMER,
    CRITICAL,
    PRODUCER,
    PairingProtocol,
)


class TestTransitions:
    def test_consumer_starter_meets_producer(self, pairing):
        assert pairing.delta(CONSUMER, PRODUCER) == (CRITICAL, BOTTOM)

    def test_producer_starter_meets_consumer(self, pairing):
        assert pairing.delta(PRODUCER, CONSUMER) == (BOTTOM, CRITICAL)

    def test_symmetric_on_initial_pair(self, pairing):
        assert pairing.is_symmetric_on(CONSUMER, PRODUCER)

    @pytest.mark.parametrize(
        "starter,reactor",
        [
            (CONSUMER, CONSUMER),
            (PRODUCER, PRODUCER),
            (CRITICAL, PRODUCER),
            (CRITICAL, CONSUMER),
            (BOTTOM, CONSUMER),
            (BOTTOM, PRODUCER),
            (CRITICAL, BOTTOM),
            (BOTTOM, CRITICAL),
        ],
    )
    def test_all_other_pairs_are_silent(self, pairing, starter, reactor):
        assert pairing.delta(starter, reactor) == (starter, reactor)

    def test_critical_state_is_absorbing(self, pairing):
        for other in pairing.states:
            assert pairing.delta(CRITICAL, other)[0] == CRITICAL
            assert pairing.delta(other, CRITICAL)[1] == CRITICAL


class TestMetadata:
    def test_states(self, pairing):
        assert pairing.states == frozenset({CONSUMER, PRODUCER, CRITICAL, BOTTOM})

    def test_initial_states(self, pairing):
        assert pairing.initial_states == frozenset({CONSUMER, PRODUCER})

    def test_protocol_is_closed(self, pairing):
        assert pairing.is_closed()

    def test_output_true_only_for_critical(self, pairing):
        assert pairing.output(CRITICAL) is True
        assert pairing.output(CONSUMER) is False
        assert pairing.output(PRODUCER) is False
        assert pairing.output(BOTTOM) is False


class TestHelpers:
    def test_initial_configuration(self):
        config = PairingProtocol.initial_configuration(2, 3)
        assert config.count(CONSUMER) == 2
        assert config.count(PRODUCER) == 3

    def test_initial_configuration_negative_raises(self):
        with pytest.raises(ValueError):
            PairingProtocol.initial_configuration(-1, 2)

    def test_critical_count(self):
        config = PairingProtocol.initial_configuration(2, 2)
        assert PairingProtocol.critical_count(config) == 0

    @pytest.mark.parametrize(
        "consumers,producers,expected",
        [(3, 5, 3), (5, 3, 3), (0, 4, 0), (4, 0, 0), (2, 2, 2)],
    )
    def test_expected_stable_critical(self, consumers, producers, expected):
        assert PairingProtocol.expected_stable_critical(consumers, producers) == expected
