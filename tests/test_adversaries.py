"""Unit tests for the omission adversaries (Definitions 1 and 2)."""

import pytest

from repro.adversary.omission import (
    BoundedOmissionAdversary,
    NO1Adversary,
    NOAdversary,
    NoOmissionAdversary,
    UOAdversary,
)
from repro.interaction.models import I1, I3, IO, T3, TW
from repro.scheduling.runs import Interaction


SCHEDULED = Interaction(0, 1)


def count_injected(adversary, steps, n=4):
    total = 0
    for step in range(steps):
        injected = adversary.interactions_before(step=step, scheduled=SCHEDULED, n=n)
        for interaction in injected:
            assert interaction.is_omissive, "adversaries may only inject omissive interactions"
            assert 0 <= interaction.starter < n
            assert 0 <= interaction.reactor < n
        total += len(injected)
    return total


class TestNoOmissionAdversary:
    def test_never_injects(self):
        assert count_injected(NoOmissionAdversary(), 100) == 0


class TestUOAdversary:
    def test_requires_omissive_model(self):
        with pytest.raises(ValueError):
            UOAdversary(TW)
        with pytest.raises(ValueError):
            UOAdversary(IO)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            UOAdversary(I3, rate=-0.1)

    def test_injects_roughly_at_rate(self):
        adversary = UOAdversary(I3, rate=0.5, seed=0)
        injected = count_injected(adversary, 2_000)
        assert 600 < injected < 1_500
        assert adversary.total_injected == injected

    def test_zero_rate_never_injects(self):
        assert count_injected(UOAdversary(I3, rate=0.0, seed=0), 500) == 0

    def test_max_per_gap_is_respected(self):
        adversary = UOAdversary(I3, rate=10.0, max_per_gap=2, seed=1)
        for step in range(200):
            injected = adversary.interactions_before(step=step, scheduled=SCHEDULED, n=4)
            assert len(injected) <= 2

    def test_keeps_injecting_forever(self):
        """Unlike NO, the UO adversary still injects late in the execution."""
        adversary = UOAdversary(I3, rate=0.5, seed=3)
        count_injected(adversary, 1_000)
        late = sum(
            len(adversary.interactions_before(step=step, scheduled=SCHEDULED, n=4))
            for step in range(10_000, 10_500)
        )
        assert late > 0

    def test_one_way_model_omissions_are_reactor_side(self):
        adversary = UOAdversary(I1, rate=5.0, seed=2)
        for step in range(100):
            for interaction in adversary.interactions_before(step, SCHEDULED, 4):
                assert interaction.omission.reactor_lost
                assert not interaction.omission.starter_lost

    def test_two_way_model_can_hit_either_side(self):
        adversary = UOAdversary(T3, rate=5.0, seed=4)
        kinds = set()
        for step in range(300):
            for interaction in adversary.interactions_before(step, SCHEDULED, 4):
                kinds.add((interaction.omission.starter_lost, interaction.omission.reactor_lost))
        assert len(kinds) >= 2

    def test_reset(self):
        adversary = UOAdversary(I3, rate=0.5, seed=9)
        first = count_injected(adversary, 200)
        adversary.reset()
        second = count_injected(adversary, 200)
        assert first == second


class TestNOAdversary:
    def test_stops_after_active_steps(self):
        adversary = NOAdversary(I3, active_steps=50, rate=1.0, seed=0)
        early = count_injected(adversary, 50)
        late = sum(
            len(adversary.interactions_before(step=step, scheduled=SCHEDULED, n=4))
            for step in range(50, 500)
        )
        assert early > 0
        assert late == 0

    def test_rejects_negative_active_steps(self):
        with pytest.raises(ValueError):
            NOAdversary(I3, active_steps=-1)


class TestBoundedAdversary:
    def test_budget_is_hard_cap(self):
        adversary = BoundedOmissionAdversary(I3, max_omissions=3, rate=1.0, seed=0)
        assert count_injected(adversary, 1_000) == 3
        assert adversary.total_injected == 3

    def test_zero_budget(self):
        adversary = BoundedOmissionAdversary(I3, max_omissions=0, seed=0)
        assert count_injected(adversary, 100) == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            BoundedOmissionAdversary(I3, max_omissions=-1)

    def test_reset_restores_budget(self):
        adversary = BoundedOmissionAdversary(I3, max_omissions=2, rate=1.0, seed=0)
        count_injected(adversary, 100)
        adversary.reset()
        assert adversary.total_injected == 0
        assert count_injected(adversary, 100) == 2


class TestNO1Adversary:
    def test_exactly_one_omission(self):
        adversary = NO1Adversary(I3, inject_at=0, seed=0)
        assert count_injected(adversary, 500) == 1

    def test_injection_at_chosen_step(self):
        adversary = NO1Adversary(I3, inject_at=7, seed=0)
        for step in range(7):
            assert adversary.interactions_before(step, SCHEDULED, 4) == []
        assert len(adversary.interactions_before(7, SCHEDULED, 4)) == 1
        assert adversary.interactions_before(8, SCHEDULED, 4) == []

    def test_pinned_pair(self):
        adversary = NO1Adversary(I3, inject_at=0, pair=(2, 3), seed=0)
        injected = adversary.interactions_before(0, SCHEDULED, 4)
        assert injected[0].pair == (2, 3)
        assert injected[0].is_omissive
