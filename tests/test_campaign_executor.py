"""Concurrency-equivalence tests for the parallel campaign executor and
the multi-campaign queue.

The pin under test is **fold-equivalence**: ``report(records)`` is a pure
function of the record *set* — identical across the serial runner and the
cell-level parallel executor, any ``cell_jobs``, any interrupt point, any
cell-internal fan-out backend, and both engine backends.  Completion
order is the one nondeterministic seam (``_completed_in_order``), so the
suite also *injects* deterministic permutations through it — no
wall-clock, no randomness — to prove order-independence is a property of
the folds, not an accident of thread timing.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign.executor import run_campaign_parallel
from repro.campaign.planner import plan_campaign
from repro.campaign.queue import CampaignQueue
from repro.campaign.report import render_report
from repro.campaign.runner import campaign_status, run_campaign
from repro.campaign.spec import campaign_from_dict
from repro.campaign.store import ResultStore, SharedResultStore
from repro.cli import main


def small_campaign(backend: str = "python", name: str = "small-grid") -> dict:
    """The fast four-cell campaign the determinism tests sweep."""
    return {
        "name": name,
        "base": {"protocol": "epidemic", "backend": backend},
        "axes": {
            "scheduler": ["random", "round-robin"],
            "population": [4, 6],
        },
        "runs": 2,
        "base_seed": 3,
        "max_steps": 20_000,
        "stability_window": 8,
    }


def fresh_store(tmp_path, plan, name="store.jsonl"):
    return ResultStore.create(str(tmp_path / name), plan.campaign.name,
                              plan.campaign_hash)


def canonical_records(store):
    return sorted(json.dumps(record, sort_keys=True)
                  for record in store.cell_records.values())


def serial_reference(tmp_path, plan):
    """The serial run every parallel execution must fold-match."""
    store = fresh_store(tmp_path, plan, name="serial-reference.jsonl")
    run_campaign(plan, store)
    return canonical_records(store), render_report(plan, store.cell_records)


# ---------------------------------------------------------------------------
# executor vs serial: full runs
# ---------------------------------------------------------------------------


class TestParallelEquivalence:
    @pytest.mark.parametrize("cell_jobs", [1, 2, 4])
    @pytest.mark.parametrize("jobs, jobs_backend, run_chunk", [
        (1, "thread", 1),       # sequential inside each cell
        (2, "thread", 1),       # cell-level pool composed with thread fan-out
    ])
    def test_parallel_run_folds_identically_to_serial(
            self, tmp_path, cell_jobs, jobs, jobs_backend, run_chunk):
        plan = plan_campaign(campaign_from_dict(small_campaign()))
        expected_records, expected_report = serial_reference(tmp_path, plan)

        store = fresh_store(tmp_path, plan)
        status = run_campaign_parallel(
            plan, store, cell_jobs=cell_jobs, jobs=jobs,
            jobs_backend=jobs_backend, run_chunk=run_chunk)
        assert status.complete and status.executed_now == plan.total
        assert canonical_records(store) == expected_records
        assert render_report(plan, store.cell_records) == expected_report

    def test_parallel_run_composes_with_process_fanout(self, tmp_path):
        plan = plan_campaign(campaign_from_dict(small_campaign()))
        expected_records, expected_report = serial_reference(tmp_path, plan)
        store = fresh_store(tmp_path, plan)
        run_campaign_parallel(plan, store, cell_jobs=2, jobs=2,
                              jobs_backend="process", run_chunk=2)
        assert canonical_records(store) == expected_records
        assert render_report(plan, store.cell_records) == expected_report

    def test_run_campaign_delegates_on_cell_jobs(self, tmp_path):
        plan = plan_campaign(campaign_from_dict(small_campaign()))
        expected_records, expected_report = serial_reference(tmp_path, plan)
        store = fresh_store(tmp_path, plan)
        status = run_campaign(plan, store, cell_jobs=4)
        assert status.complete
        assert canonical_records(store) == expected_records
        assert render_report(plan, store.cell_records) == expected_report

    def test_cell_jobs_must_be_positive(self, tmp_path):
        plan = plan_campaign(campaign_from_dict(small_campaign()))
        store = fresh_store(tmp_path, plan)
        with pytest.raises(ValueError):
            run_campaign_parallel(plan, store, cell_jobs=0)
        with pytest.raises(ValueError):
            run_campaign(plan, store, cell_jobs=0)

    @pytest.mark.parametrize("interrupt_after", [1, 2, 3])
    def test_array_backend_parallel_matches_serial(self, tmp_path,
                                                   interrupt_after):
        pytest.importorskip("numpy")
        plan = plan_campaign(campaign_from_dict(small_campaign(backend="array")))
        expected_records, expected_report = serial_reference(tmp_path, plan)
        store = fresh_store(tmp_path, plan)
        run_campaign_parallel(plan, store, cell_jobs=2,
                              max_cells=interrupt_after)
        run_campaign_parallel(plan, store, cell_jobs=2)
        assert canonical_records(store) == expected_records
        assert render_report(plan, store.cell_records) == expected_report


# ---------------------------------------------------------------------------
# interrupt after any prefix, resume with any executor
# ---------------------------------------------------------------------------


class TestInterruptResumeEquivalence:
    @pytest.mark.parametrize("interrupt_after", [1, 2, 3])
    @pytest.mark.parametrize("cell_jobs", [1, 2, 4])
    def test_interrupted_parallel_run_resumes_to_the_serial_fold(
            self, tmp_path, interrupt_after, cell_jobs):
        plan = plan_campaign(campaign_from_dict(small_campaign()))
        expected_records, expected_report = serial_reference(tmp_path, plan)

        store = fresh_store(tmp_path, plan)
        partial = run_campaign_parallel(
            plan, store, cell_jobs=cell_jobs, max_cells=interrupt_after)
        assert partial.interrupted and not partial.keyboard_interrupt
        assert partial.executed_now == interrupt_after
        # The interrupt point is deterministic whatever the pool width:
        # exactly the first `interrupt_after` cells in plan order ran.
        assert sorted(store.completed_ids()) == sorted(
            cell.cell_id for cell in plan.cells[:interrupt_after])

        resumed = ResultStore.open(store.path, plan.campaign.name,
                                   plan.campaign_hash)
        status = run_campaign_parallel(plan, resumed, cell_jobs=cell_jobs)
        assert status.complete
        assert status.executed_now == plan.total - interrupt_after
        assert canonical_records(resumed) == expected_records
        assert render_report(plan, resumed.cell_records) == expected_report

    @pytest.mark.parametrize("first, second", [
        ("serial", "parallel"), ("parallel", "serial")])
    def test_executors_can_resume_each_other(self, tmp_path, first, second):
        plan = plan_campaign(campaign_from_dict(small_campaign()))
        expected_records, expected_report = serial_reference(tmp_path, plan)

        def step(executor: str, store, **kwargs):
            if executor == "serial":
                return run_campaign(plan, store, **kwargs)
            return run_campaign_parallel(plan, store, cell_jobs=4, **kwargs)

        store = fresh_store(tmp_path, plan)
        step(first, store, max_cells=2)
        resumed = ResultStore.open(store.path, plan.campaign.name,
                                   plan.campaign_hash)
        status = step(second, resumed)
        assert status.complete
        assert canonical_records(resumed) == expected_records
        assert render_report(plan, resumed.cell_records) == expected_report

    def test_keyboard_interrupt_mid_pool_leaves_a_resumable_store(
            self, tmp_path, monkeypatch):
        plan = plan_campaign(campaign_from_dict(small_campaign()))
        expected_records, expected_report = serial_reference(tmp_path, plan)
        store = fresh_store(tmp_path, plan)

        import repro.campaign.executor as executor_module
        real = executor_module.build_cell_record
        calls = {"n": 0}

        def interrupting(cell, plan_, **kwargs):
            calls["n"] += 1
            if calls["n"] > 2:
                raise KeyboardInterrupt
            return real(cell, plan_, **kwargs)

        monkeypatch.setattr(executor_module, "build_cell_record", interrupting)
        status = run_campaign_parallel(plan, store, cell_jobs=1)
        assert status.interrupted and status.keyboard_interrupt
        assert 0 < status.done < plan.total

        monkeypatch.setattr(executor_module, "build_cell_record", real)
        resumed = ResultStore.open(store.path, plan.campaign.name,
                                   plan.campaign_hash)
        final = run_campaign_parallel(plan, resumed, cell_jobs=4)
        assert final.complete
        assert canonical_records(resumed) == expected_records
        assert render_report(plan, resumed.cell_records) == expected_report


# ---------------------------------------------------------------------------
# injected completion-order permutations
# ---------------------------------------------------------------------------


#: Deterministic permutations of a four-element completion sequence (no
#: randomness per RPL001, no wall-clock per RPL002): the identity, the full
#: reversal, and an interleave.  Prefixes apply when fewer cells run.
PERMUTATIONS = {
    "identity": [0, 1, 2, 3],
    "reversed": [3, 2, 1, 0],
    "interleaved": [2, 0, 3, 1],
}


def permuting(order):
    """A ``_completed_in_order`` stand-in yielding a fixed permutation."""

    def completed(futures):
        indices = [index for index in order if index < len(futures)]
        assert len(indices) == len(futures)
        return iter([futures[index] for index in indices])

    return completed


class TestInjectedCompletionOrder:
    @pytest.mark.parametrize("permutation", sorted(PERMUTATIONS))
    def test_any_completion_order_folds_identically(self, tmp_path,
                                                    monkeypatch, permutation):
        plan = plan_campaign(campaign_from_dict(small_campaign()))
        expected_records, expected_report = serial_reference(tmp_path, plan)

        import repro.campaign.executor as executor_module
        monkeypatch.setattr(executor_module, "_completed_in_order",
                            permuting(PERMUTATIONS[permutation]))
        store = fresh_store(tmp_path, plan)
        status = run_campaign_parallel(plan, store, cell_jobs=4)
        assert status.complete
        assert canonical_records(store) == expected_records
        assert render_report(plan, store.cell_records) == expected_report

    def test_the_injected_shuffle_really_permutes_the_file(self, tmp_path,
                                                           monkeypatch):
        """Guard against the permutation seam silently not applying: under
        the reversal the on-disk append order must differ from plan order
        while the folds (previous test) stay identical."""
        plan = plan_campaign(campaign_from_dict(small_campaign()))
        import repro.campaign.executor as executor_module
        monkeypatch.setattr(executor_module, "_completed_in_order",
                            permuting(PERMUTATIONS["reversed"]))
        store = fresh_store(tmp_path, plan)
        run_campaign_parallel(plan, store, cell_jobs=4)
        with open(store.path, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        on_disk = [record["cell_id"] for record in lines
                   if record.get("kind") == "cell"]
        assert on_disk == [cell.cell_id for cell in reversed(plan.cells)]

    @pytest.mark.parametrize("permutation", ["reversed", "interleaved"])
    def test_interrupt_under_a_shuffle_still_resumes_to_the_serial_fold(
            self, tmp_path, monkeypatch, permutation):
        plan = plan_campaign(campaign_from_dict(small_campaign()))
        expected_records, expected_report = serial_reference(tmp_path, plan)

        import repro.campaign.executor as executor_module
        monkeypatch.setattr(executor_module, "_completed_in_order",
                            permuting(PERMUTATIONS[permutation]))
        store = fresh_store(tmp_path, plan)
        run_campaign_parallel(plan, store, cell_jobs=4, max_cells=2)
        resumed = ResultStore.open(store.path, plan.campaign.name,
                                   plan.campaign_hash)
        run_campaign_parallel(plan, resumed, cell_jobs=4)
        assert canonical_records(resumed) == expected_records
        assert render_report(plan, resumed.cell_records) == expected_report


# ---------------------------------------------------------------------------
# status folds the record set, not the append order
# ---------------------------------------------------------------------------


class TestStatusOrderIndependence:
    def test_status_counts_are_append_order_independent(self, tmp_path,
                                                        monkeypatch):
        plan = plan_campaign(campaign_from_dict(small_campaign()))
        import repro.campaign.executor as executor_module
        monkeypatch.setattr(executor_module, "_completed_in_order",
                            permuting(PERMUTATIONS["reversed"]))
        store = fresh_store(tmp_path, plan)
        run_campaign_parallel(plan, store, cell_jobs=4, max_cells=3)

        reopened = ResultStore.open(store.path, plan.campaign.name,
                                    plan.campaign_hash, recover=False)
        status = campaign_status(plan, reopened)
        assert (status.done, status.pending) == (3, 1)
        # The pending cell is identified by id, not by position.
        assert [cell.cell_id for cell in status.pending_cells] == [
            plan.cells[3].cell_id]

    def test_cli_status_after_a_shuffled_parallel_run(self, tmp_path,
                                                      monkeypatch, capsys):
        spec_path = tmp_path / "grid.json"
        spec_path.write_text(json.dumps(small_campaign()), encoding="utf-8")
        plan = plan_campaign(campaign_from_dict(small_campaign()))

        import repro.campaign.executor as executor_module
        monkeypatch.setattr(executor_module, "_completed_in_order",
                            permuting(PERMUTATIONS["interleaved"]))
        store = fresh_store(tmp_path, plan)
        run_campaign_parallel(plan, store, cell_jobs=4)

        code = main(["campaign", "status", str(spec_path),
                     "--store", store.path])
        out = capsys.readouterr().out
        assert code == 0
        assert "| done      | 4" in out
        assert "| pending   | 0" in out


# ---------------------------------------------------------------------------
# the multi-campaign queue
# ---------------------------------------------------------------------------


def counting_build(monkeypatch):
    """Count (and order) the cells the queue actually computes."""
    import repro.campaign.queue as queue_module
    real = queue_module.build_cell_record
    executed = []

    def counted(cell, plan, **kwargs):
        executed.append(cell.cell_id)
        return real(cell, plan, **kwargs)

    monkeypatch.setattr(queue_module, "build_cell_record", counted)
    return executed


class TestCampaignQueue:
    def overlapping_plans(self):
        first = small_campaign(name="first")
        second = small_campaign(name="second")
        second["axes"]["population"] = [4, 6, 8]  # superset: 2 extra cells
        return (plan_campaign(campaign_from_dict(first)),
                plan_campaign(campaign_from_dict(second)))

    def test_overlapping_campaigns_compute_each_cell_once(self, tmp_path,
                                                          monkeypatch):
        plan_a, plan_b = self.overlapping_plans()
        executed = counting_build(monkeypatch)

        queue = CampaignQueue()
        store_a = fresh_store(tmp_path, plan_a, name="a.jsonl")
        store_b = fresh_store(tmp_path, plan_b, name="b.jsonl")
        queue.submit(plan_a, store_a)
        queue.submit(plan_b, store_b)
        statuses = queue.drain(cell_jobs=2)

        shared = set(plan_a.cell_ids()) & set(plan_b.cell_ids())
        assert len(shared) == 4
        assert sorted(executed) == sorted(set(plan_a.cell_ids())
                                          | set(plan_b.cell_ids()))
        assert all(status.complete for status in statuses)

        # Each store is record-identical to running its campaign alone.
        for plan, store in ((plan_a, store_a), (plan_b, store_b)):
            isolated = fresh_store(tmp_path, plan,
                                   name=f"isolated-{plan.campaign.name}.jsonl")
            run_campaign(plan, isolated)
            assert canonical_records(store) == canonical_records(isolated)
            assert render_report(plan, store.cell_records) == render_report(
                plan, isolated.cell_records)

    def test_prepopulated_store_satisfies_other_campaigns(self, tmp_path,
                                                          monkeypatch):
        plan_a, plan_b = self.overlapping_plans()
        store_a = fresh_store(tmp_path, plan_a, name="a.jsonl")
        run_campaign(plan_a, store_a)  # the pool the queue may reuse

        executed = counting_build(monkeypatch)
        queue = CampaignQueue()
        store_b = fresh_store(tmp_path, plan_b, name="b.jsonl")
        queue.submit(plan_a, store_a)
        queue.submit(plan_b, store_b)
        status_a, status_b = queue.drain(cell_jobs=2)

        # Only the set-difference cells were computed; the overlap came
        # from the first campaign's finished store.
        assert sorted(executed) == sorted(
            set(plan_b.cell_ids()) - set(plan_a.cell_ids()))
        assert status_a.complete and status_a.executed_now == 0
        assert status_b.complete
        assert status_b.executed_now == len(executed)

        isolated = fresh_store(tmp_path, plan_b, name="isolated-b.jsonl")
        run_campaign(plan_b, isolated)
        assert canonical_records(store_b) == canonical_records(isolated)

    def test_priority_orders_the_schedule(self, tmp_path, monkeypatch):
        plan_a, plan_b = self.overlapping_plans()
        executed = counting_build(monkeypatch)

        queue = CampaignQueue()
        store_a = fresh_store(tmp_path, plan_a, name="a.jsonl")
        store_b = fresh_store(tmp_path, plan_b, name="b.jsonl")
        queue.submit(plan_a, store_a, priority=0)
        queue.submit(plan_b, store_b, priority=10)
        queue.drain(cell_jobs=1)  # one worker: execution order == schedule

        # Every cell of the high-priority campaign runs before any cell
        # exclusive to the low-priority one (here the overlap is owned by
        # the high-priority campaign, so its whole grid goes first).
        assert executed == [cell.cell_id for cell in plan_b.cells]

    def test_priority_defaults_to_the_spec_field(self, tmp_path):
        data = small_campaign()
        data["priority"] = 7
        plan = plan_campaign(campaign_from_dict(data))
        queue = CampaignQueue()
        entry = queue.submit(plan, fresh_store(tmp_path, plan))
        assert entry.priority == 7
        override = queue.submit(plan, fresh_store(tmp_path, plan,
                                                  name="other.jsonl"),
                                priority=-1)
        assert override.priority == -1

    def test_queue_into_one_shared_store_appends_each_cell_once(
            self, tmp_path):
        plan_a, plan_b = self.overlapping_plans()
        pool = SharedResultStore.create(str(tmp_path / "pool.jsonl"))
        queue = CampaignQueue()
        queue.submit(plan_a, pool)
        queue.submit(plan_b, pool)
        statuses = queue.drain(cell_jobs=2)
        assert all(status.complete for status in statuses)
        union = set(plan_a.cell_ids()) | set(plan_b.cell_ids())
        assert pool.completed_ids() == union
        with open(pool.path, "r", encoding="utf-8") as handle:
            cell_lines = [line for line in handle if '"kind": "cell"' in line]
        assert len(cell_lines) == len(union)

    def test_drain_is_idempotent(self, tmp_path, monkeypatch):
        plan_a, plan_b = self.overlapping_plans()
        queue = CampaignQueue()
        store_a = fresh_store(tmp_path, plan_a, name="a.jsonl")
        store_b = fresh_store(tmp_path, plan_b, name="b.jsonl")
        queue.submit(plan_a, store_a)
        queue.submit(plan_b, store_b)
        queue.drain(cell_jobs=2)
        before = (canonical_records(store_a), canonical_records(store_b))
        executed = counting_build(monkeypatch)
        statuses = queue.drain(cell_jobs=2)
        assert executed == []
        assert all(status.complete and status.executed_now == 0
                   for status in statuses)
        assert (canonical_records(store_a),
                canonical_records(store_b)) == before

    def test_drain_rejects_nonpositive_cell_jobs(self, tmp_path):
        plan = plan_campaign(campaign_from_dict(small_campaign()))
        queue = CampaignQueue()
        queue.submit(plan, fresh_store(tmp_path, plan))
        with pytest.raises(ValueError):
            queue.drain(cell_jobs=0)
