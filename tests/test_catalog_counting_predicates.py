"""Unit tests for the counting and boolean-predicate catalog protocols."""

import pytest

from repro.protocols.catalog.counting import ModuloCountingProtocol, ThresholdProtocol
from repro.protocols.catalog.predicates import AndProtocol, OrProtocol, ParityProtocol
from repro.protocols.protocol import ProtocolError


class TestThresholdProtocol:
    def test_invalid_threshold(self):
        with pytest.raises(ProtocolError):
            ThresholdProtocol(threshold=0)

    def test_initial_states(self, threshold_protocol):
        assert threshold_protocol.initial_state(0) == (0, False)
        assert threshold_protocol.initial_state(1) == (1, False)

    def test_initial_state_invalid_bit(self, threshold_protocol):
        with pytest.raises(ProtocolError):
            threshold_protocol.initial_state(2)

    def test_threshold_one_marks_input_immediately(self):
        protocol = ThresholdProtocol(threshold=1)
        assert protocol.initial_state(1) == (1, True)

    def test_weight_transfer(self, threshold_protocol):
        new_starter, new_reactor = threshold_protocol.delta((1, False), (1, False))
        assert new_starter == (0, False)
        assert new_reactor == (2, False)

    def test_weight_saturates_and_sets_flag(self, threshold_protocol):
        new_starter, new_reactor = threshold_protocol.delta((2, False), (2, False))
        assert new_reactor[0] == 3
        assert new_starter[1] and new_reactor[1]

    def test_flag_propagates_both_ways(self, threshold_protocol):
        new_starter, new_reactor = threshold_protocol.delta((0, True), (0, False))
        assert new_starter[1] and new_reactor[1]
        new_starter, new_reactor = threshold_protocol.delta((0, False), (0, True))
        assert new_starter[1] and new_reactor[1]

    def test_total_weight_conserved_until_saturation(self, threshold_protocol):
        for s_weight in range(3):
            for r_weight in range(3):
                if s_weight + r_weight <= threshold_protocol.threshold:
                    new_s, new_r = threshold_protocol.delta(
                        (s_weight, False), (r_weight, False)
                    )
                    assert new_s[0] + new_r[0] == s_weight + r_weight

    def test_output(self, threshold_protocol):
        assert threshold_protocol.output((0, True)) is True
        assert threshold_protocol.output((3, False)) is True
        assert threshold_protocol.output((2, False)) is False

    def test_expected_output(self, threshold_protocol):
        assert threshold_protocol.expected_output(3) is True
        assert threshold_protocol.expected_output(2) is False

    def test_initial_configuration(self, threshold_protocol):
        config = threshold_protocol.initial_configuration(2, 3)
        assert len(config) == 5
        assert config.count((1, False)) == 2

    def test_protocol_is_closed(self, threshold_protocol):
        assert threshold_protocol.is_closed()


class TestModuloCountingProtocol:
    def test_invalid_modulus(self):
        with pytest.raises(ProtocolError):
            ModuloCountingProtocol(modulus=1)

    def test_invalid_target(self):
        with pytest.raises(ProtocolError):
            ModuloCountingProtocol(modulus=3, target=3)

    def test_collectors_merge(self, modulo_protocol):
        new_starter, new_reactor = modulo_protocol.delta(("collector", 1), ("collector", 2))
        assert new_starter == ("follower", 0)
        assert new_reactor == ("collector", 0)

    def test_collector_updates_follower(self, modulo_protocol):
        new_starter, new_reactor = modulo_protocol.delta(("collector", 2), ("follower", 0))
        assert new_starter == ("collector", 2)
        assert new_reactor == ("follower", 2)

    def test_follower_interactions_are_silent(self, modulo_protocol):
        assert modulo_protocol.delta(("follower", 1), ("follower", 2)) == (
            ("follower", 1),
            ("follower", 2),
        )
        assert modulo_protocol.delta(("follower", 1), ("collector", 2)) == (
            ("follower", 1),
            ("collector", 2),
        )

    def test_residue_sum_invariant_over_collectors(self, modulo_protocol):
        """The sum of collector residues mod m is preserved by every rule."""
        m = modulo_protocol.modulus

        def collector_sum(states):
            return sum(res for kind, res in states if kind == "collector") % m

        for s_kind in ("collector", "follower"):
            for r_kind in ("collector", "follower"):
                for s_res in range(m):
                    for r_res in range(m):
                        before = collector_sum([(s_kind, s_res), (r_kind, r_res)])
                        after = collector_sum(
                            modulo_protocol.delta((s_kind, s_res), (r_kind, r_res))
                        )
                        assert before == after

    def test_output(self, modulo_protocol):
        assert modulo_protocol.output(("collector", 0)) is True
        assert modulo_protocol.output(("follower", 1)) is False

    def test_expected_output(self, modulo_protocol):
        assert modulo_protocol.expected_output(3) is True
        assert modulo_protocol.expected_output(4) is False

    def test_protocol_is_closed(self, modulo_protocol):
        assert modulo_protocol.is_closed()


class TestBooleanPredicates:
    def test_or_spreads_one(self, or_protocol):
        assert or_protocol.delta(1, 0) == (1, 1)
        assert or_protocol.delta(0, 1) == (0, 1)
        assert or_protocol.delta(0, 0) == (0, 0)

    def test_or_expected_output(self, or_protocol):
        assert OrProtocol.expected_output(0) is False
        assert OrProtocol.expected_output(1) is True

    def test_and_spreads_zero(self):
        protocol = AndProtocol()
        assert protocol.delta(0, 1) == (0, 0)
        assert protocol.delta(1, 0) == (1, 0)
        assert protocol.delta(1, 1) == (1, 1)

    def test_and_expected_output(self):
        assert AndProtocol.expected_output(3, 0) is True
        assert AndProtocol.expected_output(3, 1) is False

    def test_parity_is_modulo_two(self, parity_protocol):
        assert parity_protocol.modulus == 2
        assert parity_protocol.target == 1
        assert parity_protocol.name == "parity"

    def test_parity_expected_output(self):
        assert ParityProtocol.expected_output(3) is True
        assert ParityProtocol.expected_output(4) is False

    def test_or_output(self, or_protocol):
        assert or_protocol.output(1) is True
        assert or_protocol.output(0) is False
