"""Unit tests for the naming protocol Nn and the knowledge-of-n simulator (Theorem 4.6)."""

import pytest

from repro.core.base import SimulatorError
from repro.core.naming import (
    NAMING,
    SIMULATING,
    KnownSizeSimulator,
    KnownSizeState,
    NamingState,
)
from repro.engine.engine import SimulationEngine
from repro.interaction.models import IO
from repro.protocols.catalog.pairing import PairingProtocol
from repro.protocols.state import Configuration
from repro.scheduling.scheduler import RandomScheduler


@pytest.fixture
def protocol():
    return PairingProtocol()


class TestConstruction:
    def test_population_size_must_be_positive(self, protocol):
        with pytest.raises(SimulatorError):
            KnownSizeSimulator(protocol, population_size=0)

    def test_initial_state_starts_naming(self, protocol):
        simulator = KnownSizeSimulator(protocol, population_size=4)
        state = simulator.initial_state("c")
        assert state.phase == NAMING
        assert state.naming == NamingState(my_id=1, max_id=1)
        assert state.p_initial == "c"

    def test_singleton_population_skips_naming(self, protocol):
        simulator = KnownSizeSimulator(protocol, population_size=1)
        state = simulator.initial_state("c")
        assert state.phase == SIMULATING
        assert state.sid.my_id == 1

    def test_initial_configuration_size_check(self, protocol):
        simulator = KnownSizeSimulator(protocol, population_size=3)
        with pytest.raises(SimulatorError):
            simulator.initial_configuration(Configuration(["c", "p"]))

    def test_projection_during_naming(self, protocol):
        simulator = KnownSizeSimulator(protocol, population_size=3)
        assert simulator.project(simulator.initial_state("p")) == "p"

    def test_embedded_sid(self, protocol):
        simulator = KnownSizeSimulator(protocol, population_size=3)
        assert simulator.sid.protocol is protocol


class TestNamingRules:
    def test_collision_increments_reactor_id(self, protocol):
        simulator = KnownSizeSimulator(protocol, population_size=4)
        starter = simulator.initial_state("c")
        reactor = simulator.initial_state("c")
        after = simulator.f(starter, reactor)
        assert after.naming.my_id == 2
        assert after.naming.max_id == 2

    def test_no_collision_keeps_id(self, protocol):
        simulator = KnownSizeSimulator(protocol, population_size=4)
        starter = KnownSizeState(phase=NAMING, p_initial="c", naming=NamingState(2, 2))
        reactor = simulator.initial_state("c")
        after = simulator.f(starter, reactor)
        assert after.naming.my_id == 1
        assert after.naming.max_id == 2, "max id is learned from the starter"

    def test_max_id_propagates(self, protocol):
        simulator = KnownSizeSimulator(protocol, population_size=5)
        starter = KnownSizeState(phase=NAMING, p_initial="c", naming=NamingState(1, 4))
        reactor = KnownSizeState(phase=NAMING, p_initial="p", naming=NamingState(2, 2))
        after = simulator.f(starter, reactor)
        assert after.naming.max_id == 4

    def test_reaching_n_starts_simulation(self, protocol):
        simulator = KnownSizeSimulator(protocol, population_size=3)
        starter = KnownSizeState(phase=NAMING, p_initial="c", naming=NamingState(3, 3))
        reactor = KnownSizeState(phase=NAMING, p_initial="p", naming=NamingState(2, 2))
        after = simulator.f(starter, reactor)
        assert after.phase == SIMULATING
        assert after.sid.my_id == 2
        assert after.sid.sim == "p"

    def test_collision_that_reaches_n_uses_incremented_id(self, protocol):
        simulator = KnownSizeSimulator(protocol, population_size=3)
        starter = KnownSizeState(phase=NAMING, p_initial="c", naming=NamingState(2, 2))
        reactor = KnownSizeState(phase=NAMING, p_initial="p", naming=NamingState(2, 2))
        after = simulator.f(starter, reactor)
        assert after.phase == SIMULATING
        assert after.sid.my_id == 3

    def test_simulating_starter_teaches_max_to_naming_reactor(self, protocol):
        simulator = KnownSizeSimulator(protocol, population_size=3)
        from repro.core.sid import SIDState

        starter = KnownSizeState(
            phase=SIMULATING, p_initial="c", sid=SIDState(my_id=3, sim="c")
        )
        reactor = simulator.initial_state("p")
        after = simulator.f(starter, reactor)
        assert after.phase == SIMULATING, "observing a named agent reveals max_id = n"

    def test_naming_starter_does_not_advance_simulating_reactor(self, protocol):
        simulator = KnownSizeSimulator(protocol, population_size=3)
        from repro.core.sid import SIDState

        starter = simulator.initial_state("c")
        reactor = KnownSizeState(
            phase=SIMULATING, p_initial="p", sid=SIDState(my_id=1, sim="p")
        )
        assert simulator.f(starter, reactor) == reactor


class TestNamingConvergence:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_ids_become_unique_and_simulation_starts(self, protocol, n):
        simulator = KnownSizeSimulator(protocol, population_size=n)
        p_config = Configuration(["c"] * (n // 2) + ["p"] * (n - n // 2))
        config = simulator.initial_configuration(p_config)
        engine = SimulationEngine(simulator, IO, RandomScheduler(n, seed=n))
        trace = engine.run(
            config,
            max_steps=40_000,
            stop_condition=KnownSizeSimulator.naming_complete,
        )
        final = trace.final_configuration
        assert KnownSizeSimulator.naming_complete(final)
        ids = KnownSizeSimulator.assigned_ids(final)
        assert sorted(ids) == list(range(1, n + 1)), "ids must be exactly 1..n"

    def test_projection_preserved_through_naming(self, protocol):
        n = 4
        simulator = KnownSizeSimulator(protocol, population_size=n)
        p_config = Configuration(["c", "c", "p", "p"])
        config = simulator.initial_configuration(p_config)
        engine = SimulationEngine(simulator, IO, RandomScheduler(n, seed=1))
        trace = engine.run(
            config, max_steps=20_000, stop_condition=KnownSizeSimulator.naming_complete
        )
        # No simulated interaction can complete before everyone is named, but
        # some agents may have started simulating and begun pairing; the
        # simulated *multiset* visible right after naming completes must still
        # be reachable from the initial one.  In particular the number of
        # critical consumers cannot exceed the number of producers.
        projected = simulator.project_configuration(trace.final_configuration)
        assert projected.count("cs") <= p_config.count("p")
