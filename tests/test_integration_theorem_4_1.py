"""Integration tests for Theorem 4.1 and Corollary 1.

``SKnO`` must simulate arbitrary two-way protocols on ``I3``/``I4`` when the
number of omissions stays within the announced bound, and on ``IT`` with
``o = 0``.  "Simulate" is checked end to end: the simulated protocol's output
stabilises to the correct value AND the trace passes the Definition 3/4
verification (events, matching, derived run).
"""

import pytest

from repro.adversary.omission import BoundedOmissionAdversary, UOAdversary
from repro.core.skno import SKnOSimulator
from repro.core.verification import verify_simulation
from repro.engine.convergence import run_until_stable
from repro.engine.engine import SimulationEngine
from repro.interaction.models import get_model
from repro.problems.pairing import PairingProblem
from repro.protocols.catalog.majority import ExactMajorityProtocol
from repro.protocols.catalog.pairing import PairingProtocol
from repro.protocols.catalog.predicates import OrProtocol
from repro.protocols.state import Configuration
from repro.scheduling.scheduler import RandomScheduler

MAX_STEPS = 150_000
WINDOW = 300


def simulate_and_verify(simulator, model, config, predicate, adversary=None, seed=0,
                        max_steps=MAX_STEPS):
    engine = SimulationEngine(simulator, model, RandomScheduler(len(config), seed=seed),
                              adversary=adversary)
    result = run_until_stable(engine, config, predicate, max_steps=max_steps,
                              stability_window=WINDOW)
    report = verify_simulation(simulator, result.trace)
    return result, report


class TestCorollary1IT:
    """o = 0: every TW protocol is simulable on Immediate Transmission."""

    def test_exact_majority_on_it(self):
        protocol = ExactMajorityProtocol()
        simulator = SKnOSimulator(protocol, omission_bound=0)
        config = simulator.initial_configuration(protocol.initial_configuration(5, 3))
        predicate = lambda c: all(
            protocol.output(simulator.project(s)) == "A" for s in c)
        result, report = simulate_and_verify(simulator, get_model("IT"), config, predicate)
        assert result.converged, "majority must stabilise through the simulator"
        assert report.ok, report.errors

    def test_or_on_it(self):
        protocol = OrProtocol()
        simulator = SKnOSimulator(protocol, omission_bound=0)
        config = simulator.initial_configuration(protocol.initial_configuration(1, 5))
        predicate = lambda c: all(simulator.project(s) == 1 for s in c)
        result, report = simulate_and_verify(simulator, get_model("IT"), config, predicate)
        assert result.converged
        assert report.ok, report.errors

    def test_pairing_on_it_preserves_safety_and_liveness(self):
        protocol = PairingProtocol()
        problem = PairingProblem(consumers=3, producers=2)
        simulator = SKnOSimulator(protocol, omission_bound=0)
        config = simulator.initial_configuration(problem.initial_configuration())
        predicate = lambda c: problem.is_live(c.project(simulator.project))
        result, report = simulate_and_verify(simulator, get_model("IT"), config, predicate,
                                             seed=3)
        assert result.converged
        assert report.ok, report.errors
        problem_report = problem.check(
            result.trace.projected_configurations(simulator.project))
        assert problem_report.safe
        assert problem_report.live


class TestTheorem41I3:
    """Omissions within the bound o: simulation still works on I3."""

    @pytest.mark.parametrize("omission_bound", [1, 2, 3])
    def test_exact_majority_with_bounded_omissions(self, omission_bound):
        protocol = ExactMajorityProtocol()
        simulator = SKnOSimulator(protocol, omission_bound=omission_bound)
        config = simulator.initial_configuration(protocol.initial_configuration(5, 3))
        adversary = BoundedOmissionAdversary(
            get_model("I3"), max_omissions=omission_bound, seed=omission_bound)
        predicate = lambda c: all(
            protocol.output(simulator.project(s)) == "A" for s in c)
        result, report = simulate_and_verify(
            simulator, get_model("I3"), config, predicate, adversary=adversary,
            seed=omission_bound)
        assert result.converged
        assert result.trace.omission_count() <= omission_bound
        assert report.ok, report.errors

    def test_pairing_with_omissions_keeps_safety(self):
        protocol = PairingProtocol()
        problem = PairingProblem(consumers=2, producers=3)
        simulator = SKnOSimulator(protocol, omission_bound=2)
        config = simulator.initial_configuration(problem.initial_configuration())
        adversary = BoundedOmissionAdversary(get_model("I3"), max_omissions=2, seed=7)
        predicate = lambda c: problem.is_live(c.project(simulator.project))
        result, report = simulate_and_verify(
            simulator, get_model("I3"), config, predicate, adversary=adversary, seed=11)
        assert result.converged
        assert report.ok, report.errors
        problem_report = problem.check(
            result.trace.projected_configurations(simulator.project))
        assert problem_report.safe
        assert problem_report.live

    def test_uo_adversary_with_budget_within_bound(self):
        """A UO-style adversary whose injections happen to stay within o is harmless."""
        protocol = OrProtocol()
        simulator = SKnOSimulator(protocol, omission_bound=4)
        config = simulator.initial_configuration(protocol.initial_configuration(2, 4))
        adversary = BoundedOmissionAdversary(get_model("I3"), max_omissions=4, rate=0.9, seed=2)
        predicate = lambda c: all(simulator.project(s) == 1 for s in c)
        result, report = simulate_and_verify(
            simulator, get_model("I3"), config, predicate, adversary=adversary, seed=5)
        assert result.converged
        assert report.ok, report.errors


class TestTheorem41I4:
    """The symmetric variant for I4 (starter-side omission detection)."""

    @pytest.mark.parametrize("omission_bound", [1, 2])
    def test_exact_majority_on_i4(self, omission_bound):
        protocol = ExactMajorityProtocol()
        simulator = SKnOSimulator(protocol, omission_bound=omission_bound, variant="I4")
        config = simulator.initial_configuration(protocol.initial_configuration(5, 3))
        adversary = BoundedOmissionAdversary(
            get_model("I4"), max_omissions=omission_bound, seed=omission_bound)
        predicate = lambda c: all(
            protocol.output(simulator.project(s)) == "A" for s in c)
        result, report = simulate_and_verify(
            simulator, get_model("I4"), config, predicate, adversary=adversary,
            seed=13 + omission_bound)
        assert result.converged
        assert report.ok, report.errors

    def test_pairing_on_i4_keeps_safety(self):
        protocol = PairingProtocol()
        problem = PairingProblem(consumers=2, producers=2)
        simulator = SKnOSimulator(protocol, omission_bound=1, variant="I4")
        config = simulator.initial_configuration(problem.initial_configuration())
        adversary = BoundedOmissionAdversary(get_model("I4"), max_omissions=1, seed=3)
        predicate = lambda c: problem.is_live(c.project(simulator.project))
        result, report = simulate_and_verify(
            simulator, get_model("I4"), config, predicate, adversary=adversary, seed=17)
        assert result.converged
        assert report.ok, report.errors
        problem_report = problem.check(
            result.trace.projected_configurations(simulator.project))
        assert problem_report.safe
