"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.protocols import (
    ApproximateMajorityProtocol,
    AveragingProtocol,
    ExactMajorityProtocol,
    LeaderElectionProtocol,
    ModuloCountingProtocol,
    OrProtocol,
    PairingProtocol,
    ParityProtocol,
    ThresholdProtocol,
)


@pytest.fixture
def pairing():
    return PairingProtocol()


@pytest.fixture
def leader_election():
    return LeaderElectionProtocol()


@pytest.fixture
def exact_majority():
    return ExactMajorityProtocol()


@pytest.fixture
def approximate_majority():
    return ApproximateMajorityProtocol()


@pytest.fixture
def threshold_protocol():
    return ThresholdProtocol(threshold=3)


@pytest.fixture
def or_protocol():
    return OrProtocol()


@pytest.fixture
def parity_protocol():
    return ParityProtocol()


@pytest.fixture
def averaging_protocol():
    return AveragingProtocol(max_value=8)


@pytest.fixture
def modulo_protocol():
    return ModuloCountingProtocol(modulus=3, target=0)


#: Catalog of (protocol factory, small initial configuration factory, expected
#: stable predicate) triples reused by the simulator integration tests.
def small_workloads():
    """Small, fast-converging workloads shared by integration tests."""
    majority = ExactMajorityProtocol()
    leader = LeaderElectionProtocol()
    or_protocol = OrProtocol()
    return [
        (
            majority,
            majority.initial_configuration(4, 2),
            lambda config, p=majority: all(p.output(s) == "A" for s in config),
        ),
        (
            leader,
            leader.initial_configuration(6),
            lambda config: config.count("L") == 1,
        ),
        (
            or_protocol,
            or_protocol.initial_configuration(1, 5),
            lambda config: all(s == 1 for s in config),
        ),
    ]


@pytest.fixture(params=range(3), ids=["exact-majority", "leader-election", "or"])
def workload(request):
    return small_workloads()[request.param]
