"""The shared-memory result transport: lanes, identity, lifecycle, fallback.

Four pins:

* **Round-trip fidelity** — the columnar lane reproduces every scalar and
  the anonymous count multiset; the overflow lane (traces, ring failure
  dumps) survives byte-identically.
* **Merge identity** — ``repeat_experiment`` folds to the same aggregate
  for sequential, thread, process+pickle, process+shm and process+auto,
  across ``run_chunk`` values and both engine backends; a campaign over
  the shm transport folds byte-identically to the serial pickle walk,
  including through a ``max_cells`` interrupt + resume.
* **Arena lifecycle** — no ``/dev/shm`` segment survives decode, a merge
  failure, a crashed worker, or an interrupted campaign.
* **Graceful degradation** — ``auto`` falls back to pickle with a single
  warning naming the reason; explicit ``shm`` fails loudly naming the
  fallback flag, in the library and in the CLI alike.
"""

from __future__ import annotations

import json
import os
import pickle
from concurrent.futures import Future

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.planner import plan_campaign
from repro.campaign.report import render_report
from repro.campaign.runner import run_campaign
from repro.campaign.spec import campaign_from_dict
from repro.campaign.store import ResultStore
from repro.engine import transport
from repro.engine.convergence import ConvergenceResult
from repro.engine.experiment import _merge_windowed, repeat_experiment
from repro.engine.trace import Trace, TraceStep
from repro.engine.transport import (
    ShmBatch,
    TransportError,
    decode_batch,
    dispose_batch,
    encode_batch,
    resolve_transport,
)
from repro.protocols.registry import ExperimentSpec
from repro.scheduling.runs import Interaction


def counts_result(counts, converged=True, steps=7, to_convergence=3,
                  omissions=0) -> ConvergenceResult:
    """A columnar-eligible result carrying an explicit counts export."""
    return ConvergenceResult(
        converged=converged, steps_executed=steps,
        steps_to_convergence=to_convergence, trace=None, final=None,
        omissions=omissions, final_counts=tuple(counts.items()))


def ring_result() -> ConvergenceResult:
    """An overflow-lane result: a non-converged run with a ring dump."""
    step = TraceStep(
        index=0, interaction=Interaction(starter=0, reactor=1),
        starter_pre="I", starter_post="I", reactor_pre="S", reactor_post="I")
    return ConvergenceResult(
        converged=False, steps_executed=5, steps_to_convergence=None,
        trace=None, final=None, last_steps=(step,))


def segment_exists(name) -> bool:
    if name is None:
        return False
    return os.path.exists(os.path.join("/dev/shm", name))


# ---------------------------------------------------------------------------
# encode/decode round-trip
# ---------------------------------------------------------------------------


class TestRoundTrip:
    def test_columnar_scalars_and_counts_round_trip(self):
        results = [
            counts_result({"I": 3, "S": 2}),
            counts_result({"S": 5}, converged=False, steps=11,
                          to_convergence=None, omissions=4),
            counts_result({"I": 1, "L": 9}, to_convergence=0),
        ]
        batch = encode_batch(results)
        assert batch.name is not None and not batch.overflow
        decoded = decode_batch(batch)
        assert len(decoded) == len(results)
        for original, copy in zip(results, decoded):
            assert copy.converged == original.converged
            assert copy.steps_executed == original.steps_executed
            assert copy.steps_to_convergence == original.steps_to_convergence
            assert copy.omissions == original.omissions
            assert copy.trace is None and copy.final is None
            assert dict(copy.final_counts) == dict(original.final_counts)
        assert not segment_exists(batch.name)

    def test_counts_fall_back_to_final_histogram(self):
        # Python-backend results export no final_counts; the encoder
        # rebuilds the multiset from the frozen configuration.
        from repro.protocols.state import Configuration
        result = ConvergenceResult(
            converged=True, steps_executed=3, steps_to_convergence=1,
            trace=None, final=Configuration(["I", "S", "I"]))
        decoded = decode_batch(encode_batch([result]))[0]
        assert dict(decoded.final_counts) == {"I": 2, "S": 1}

    def test_overflow_lane_is_byte_identical(self):
        trace = Trace(__import__("repro.protocols.state", fromlist=["x"])
                      .Configuration(["I", "S"]))
        traced = ConvergenceResult(
            converged=True, steps_executed=0, steps_to_convergence=0,
            trace=trace)
        mixed = [counts_result({"I": 2}), ring_result(), traced]
        batch = encode_batch(mixed)
        assert set(batch.overflow) == {1, 2}
        decoded = decode_batch(batch)
        assert pickle.dumps(decoded[1]) == pickle.dumps(mixed[1])
        assert pickle.dumps(decoded[2]) == pickle.dumps(mixed[2])
        assert dict(decoded[0].final_counts) == {"I": 2}

    def test_all_overflow_batch_has_no_arena(self):
        batch = encode_batch([ring_result(), ring_result()])
        assert batch.name is None
        assert len(decode_batch(batch)) == 2

    def test_empty_batch(self):
        batch = encode_batch([])
        assert batch.name is None and batch.count == 0
        assert decode_batch(batch) == []

    def test_dispose_releases_and_tolerates_double_release(self):
        batch = encode_batch([counts_result({"I": 1})])
        assert segment_exists(batch.name)
        dispose_batch(batch)
        assert not segment_exists(batch.name)
        dispose_batch(batch)  # already unlinked: a no-op, not an error
        dispose_batch(ShmBatch(count=0, name=None, states=()))


# ---------------------------------------------------------------------------
# merge identity across transports
# ---------------------------------------------------------------------------


def fold(backend: str, jobs: int, jobs_backend: str, run_chunk: int,
         transport_name: str, population: int = 24, runs: int = 5,
         trace_policy: str = "counts-only", ring_size=None,
         max_steps: int = 4_000) -> dict:
    spec = ExperimentSpec(protocol="epidemic", population=population,
                          model="TW", backend=backend)
    return repeat_experiment(
        spec=spec, runs=runs, max_steps=max_steps, stability_window=2,
        base_seed=11, jobs=jobs, jobs_backend=jobs_backend,
        run_chunk=run_chunk, trace_policy=trace_policy, ring_size=ring_size,
        result_transport=transport_name).to_dict()


class TestMergeIdentity:
    @settings(max_examples=8, deadline=None)
    @given(runs=st.integers(min_value=2, max_value=7),
           run_chunk=st.integers(min_value=1, max_value=4),
           population=st.integers(min_value=4, max_value=40))
    def test_every_transport_folds_identically(self, runs, run_chunk,
                                               population):
        reference = fold("python", 1, "thread", 1, "pickle",
                         population=population, runs=runs)
        for jobs_backend, transport_name in [
                ("thread", "pickle"), ("process", "pickle"),
                ("process", "shm"), ("process", "auto")]:
            assert fold("python", 2, jobs_backend, run_chunk, transport_name,
                        population=population, runs=runs) == reference

    @pytest.mark.parametrize("run_chunk", [1, 3])
    def test_array_backend_folds_identically(self, run_chunk):
        pytest.importorskip("numpy")
        reference = fold("array", 1, "thread", 1, "pickle")
        for transport_name in ("pickle", "shm", "auto"):
            assert fold("array", 2, "process", run_chunk,
                        transport_name) == reference

    def test_ring_failure_dumps_survive_the_overflow_lane(self):
        # max_steps far below convergence: every run fails and carries a
        # ring dump, so under shm every result takes the pickle lane.
        kwargs = dict(population=16, runs=4, trace_policy="ring",
                      ring_size=4, max_steps=3)
        spec = ExperimentSpec(protocol="epidemic", population=16, model="TW")

        def run(jobs, jobs_backend, transport_name):
            return repeat_experiment(
                spec=spec, runs=4, max_steps=3, base_seed=0, jobs=jobs,
                jobs_backend=jobs_backend, run_chunk=2, trace_policy="ring",
                ring_size=4, result_transport=transport_name)

        reference = run(1, "thread", "pickle")
        assert reference.failures and reference.failure_dumps
        outcomes = {}
        for transport_name in ("pickle", "shm"):
            parallel = run(2, "process", transport_name)
            assert parallel.to_dict() == reference.to_dict()
            # TraceStep is a frozen dataclass: deep structural equality.
            assert parallel.failure_dumps == reference.failure_dumps
            outcomes[transport_name] = parallel
        # Between the two process transports the overflow lane is the same
        # pickle channel, so the dumps are byte-identical too.
        assert pickle.dumps(outcomes["shm"].failure_dumps) == \
            pickle.dumps(outcomes["pickle"].failure_dumps)


# ---------------------------------------------------------------------------
# arena lifecycle under failure
# ---------------------------------------------------------------------------


class TestArenaCleanup:
    def make_ready(self, payload):
        future = Future()
        future.set_result(payload)
        return future

    def test_merge_failure_disposes_undrained_batches(self):
        batches = [encode_batch([counts_result({"I": 1}),
                                 counts_result({"S": 2})])
                   for _ in range(3)]
        assert all(segment_exists(batch.name) for batch in batches)
        futures = [self.make_ready(batch) for batch in batches]
        submitted = []

        def submit(start, count):
            future = futures[start // 2]
            submitted.append(batches[start // 2])
            return future

        def merge(run_index, outcome):
            raise RuntimeError("merge exploded")

        with pytest.raises(RuntimeError, match="merge exploded"):
            _merge_windowed(submit, 6, 2, 1, merge,
                            receive=decode_batch, dispose=dispose_batch)
        # Every batch a worker actually produced is released — the first by
        # its (failed) decode-and-merge, the rest by the disposal sweep.
        assert len(submitted) == 2  # merge failed before the third submit
        assert not any(segment_exists(batch.name) for batch in submitted)
        dispose_batch(batches[2])  # never submitted: ours to clean up

    def test_worker_failure_disposes_the_other_batches(self):
        good = [encode_batch([counts_result({"I": 1})]) for _ in range(2)]
        crashed = Future()
        crashed.set_exception(RuntimeError("worker died"))
        futures = [self.make_ready(good[0]), crashed, self.make_ready(good[1])]

        def submit(start, count):
            return futures[start]

        merged = []
        with pytest.raises(RuntimeError, match="worker died"):
            _merge_windowed(submit, 3, 1, 1, lambda i, r: merged.append(i),
                            receive=decode_batch, dispose=dispose_batch)
        assert merged == [0]  # the batch before the crash merged normally
        assert not any(segment_exists(batch.name) for batch in good)

    def test_interrupted_campaign_leaks_no_segments(self, tmp_path):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm to observe")
        data = {
            "name": "shm-interrupt",
            "base": {"protocol": "epidemic"},
            "axes": {"population": [4, 6], "scheduler": ["random",
                                                         "round-robin"]},
            "runs": 2, "base_seed": 3, "max_steps": 20_000,
            "stability_window": 8,
        }
        plan = plan_campaign(campaign_from_dict(data))

        serial = ResultStore.create(str(tmp_path / "serial.jsonl"),
                                    plan.campaign.name, plan.campaign_hash)
        run_campaign(plan, serial)
        reference = render_report(plan, serial.cell_records)

        before = {entry for entry in os.listdir("/dev/shm")
                  if entry.startswith("psm_")}
        store = ResultStore.create(str(tmp_path / "shm.jsonl"),
                                   plan.campaign.name, plan.campaign_hash)
        status = run_campaign(plan, store, jobs=2, jobs_backend="process",
                              run_chunk=2, max_cells=1,
                              result_transport="shm")
        assert status.interrupted and status.executed_now == 1
        status = run_campaign(plan, store, jobs=2, jobs_backend="process",
                              run_chunk=2, result_transport="shm")
        assert status.complete
        after = {entry for entry in os.listdir("/dev/shm")
                 if entry.startswith("psm_")}
        assert after <= before
        assert render_report(plan, store.cell_records) == reference


# ---------------------------------------------------------------------------
# resolution, degradation, CLI validation
# ---------------------------------------------------------------------------


class TestResolutionAndFallback:
    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="unknown result_transport"):
            resolve_transport("zeromq", jobs_backend="process",
                              trace_policy="counts-only", process_fanout=True)

    def test_explicit_shm_requires_process_backend(self):
        with pytest.raises(ValueError, match="crosses process boundaries"):
            resolve_transport("shm", jobs_backend="thread",
                              trace_policy="counts-only", process_fanout=True)

    def test_auto_resolution_matrix(self):
        assert resolve_transport(
            "auto", jobs_backend="process", trace_policy="counts-only",
            process_fanout=True) == "shm"
        # No process fan-out, or a non-columnar policy: quietly pickle.
        assert resolve_transport(
            "auto", jobs_backend="thread", trace_policy="counts-only",
            process_fanout=False) == "pickle"
        assert resolve_transport(
            "auto", jobs_backend="process", trace_policy="full",
            process_fanout=True) == "pickle"

    def test_auto_degrades_with_one_warning(self, monkeypatch):
        monkeypatch.setattr(transport, "shm_unavailable_reason",
                            lambda: "no /dev/shm (test)")
        with pytest.warns(RuntimeWarning,
                          match=r"no /dev/shm \(test\).*falling back"):
            picked = resolve_transport(
                "auto", jobs_backend="process", trace_policy="counts-only",
                process_fanout=True)
        assert picked == "pickle"
        # The degraded fan-out still runs and folds identically.
        with pytest.warns(RuntimeWarning):
            degraded = fold("python", 2, "process", 2, "auto")
        assert degraded == fold("python", 2, "process", 2, "pickle")

    def test_explicit_shm_fails_loudly_when_unavailable(self, monkeypatch):
        monkeypatch.setattr(transport, "shm_unavailable_reason",
                            lambda: "no /dev/shm (test)")
        with pytest.raises(TransportError,
                           match="rerun with --result-transport pickle"):
            fold("python", 2, "process", 2, "shm")

    def test_cli_rejects_shm_without_process_backend(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="crosses process boundaries"):
            main(["run", "--protocol", "epidemic", "-n", "6", "--runs", "2",
                  "--result-transport", "shm"])

    def test_cli_names_fallback_flag_when_shm_unavailable(self, monkeypatch):
        from repro.cli import main
        monkeypatch.setattr(transport, "shm_unavailable_reason",
                            lambda: "no /dev/shm (test)")
        with pytest.raises(SystemExit,
                           match="rerun with --result-transport pickle"):
            main(["run", "--protocol", "epidemic", "-n", "6", "--runs", "2",
                  "--jobs", "2", "--backend", "process",
                  "--result-transport", "shm"])

    def test_cli_campaign_rejects_shm_without_process_backend(self, tmp_path):
        from repro.cli import main
        campaign = {
            "name": "cli-shm", "base": {"protocol": "epidemic"},
            "axes": {"population": [4]}, "runs": 1, "max_steps": 1000,
        }
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(campaign), encoding="utf-8")
        with pytest.raises(SystemExit, match="crosses process boundaries"):
            main(["campaign", "run", str(path), "--store",
                  str(tmp_path / "s.jsonl"), "--result-transport", "shm"])
