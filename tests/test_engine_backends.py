"""Backend registry surface that must work on installs *without* numpy.

Everything here runs on the core install: backend-name validation on the
engine and the spec, the lazy resolution contract (``import repro`` never
touches numpy), the actionable error when the array backend is requested
without the ``repro[fast]`` extra, and the new CLI flags.
"""

from __future__ import annotations

import pickle
import sys

import pytest

from repro.cli import build_parser
from repro.engine.backends import (
    ENGINE_BACKENDS,
    BackendUnavailableError,
    get_backend,
    validate_backend,
)
from repro.engine.backends.python_backend import PythonBackend
from repro.engine.engine import SimulationEngine
from repro.interaction.models import get_model
from repro.protocols.catalog.epidemic import EpidemicProtocol
from repro.protocols.registry import ExperimentSpec
from repro.scheduling.scheduler import RandomScheduler


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


class TestBackendRegistry:
    def test_known_backends(self):
        assert ENGINE_BACKENDS == ("python", "array")
        for name in ENGINE_BACKENDS:
            assert validate_backend(name) == name

    def test_unknown_backend_rejected_everywhere(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            validate_backend("gpu")
        with pytest.raises(ValueError, match="unknown engine backend"):
            get_backend("gpu")
        with pytest.raises(ValueError, match="unknown engine backend"):
            SimulationEngine(
                EpidemicProtocol(), get_model("TW"),
                RandomScheduler(4, seed=0), backend="gpu")
        with pytest.raises(ValueError, match="unknown engine backend"):
            ExperimentSpec(protocol="epidemic", population=4, backend="gpu")

    def test_python_backend_resolves_and_is_shared(self):
        backend = get_backend("python")
        assert isinstance(backend, PythonBackend)
        assert get_backend("python") is backend

    def test_engine_defaults_to_python(self):
        engine = SimulationEngine(
            EpidemicProtocol(), get_model("TW"), RandomScheduler(4, seed=0))
        assert engine.backend == "python"
        assert ExperimentSpec(protocol="epidemic", population=4).backend == "python"

    def test_importing_repro_does_not_import_numpy(self):
        # The lazy-resolution contract behind the dependency-free core
        # install: no repro module may pull numpy in at import time.  A
        # fresh interpreter is the only reliable observer (this process
        # already has everything imported).
        import subprocess

        script = (
            "import sys; "
            "import repro, repro.cli, repro.engine.backends, "
            "repro.protocols.registry; "
            "leaked = [m for m in sys.modules if m.split('.')[0] == 'numpy']; "
            "assert not leaked, leaked"
        )
        subprocess.run(
            [sys.executable, "-c", script], check=True, timeout=120)

    @pytest.mark.skipif(
        _numpy_available(), reason="exercises the install without repro[fast]")
    def test_array_backend_unavailable_error_is_actionable(self):
        with pytest.raises(BackendUnavailableError, match=r"repro\[fast\]"):
            get_backend("array")


class TestSpecBackendField:
    def test_backend_survives_pickling(self):
        spec = ExperimentSpec(protocol="epidemic", population=4, backend="array")
        assert pickle.loads(pickle.dumps(spec)).backend == "array"

    def test_backend_participates_in_identity(self):
        python_spec = ExperimentSpec(protocol="epidemic", population=4)
        array_spec = ExperimentSpec(
            protocol="epidemic", population=4, backend="array")
        assert python_spec != array_spec
        assert hash(python_spec) != hash(array_spec)


class TestCLIFlags:
    def test_engine_backend_flag(self):
        args = build_parser().parse_args(["run"])
        assert args.engine_backend == "python"
        args = build_parser().parse_args(["run", "--engine-backend", "array"])
        assert args.engine_backend == "array"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--engine-backend", "gpu"])

    def test_scheduler_flag(self):
        args = build_parser().parse_args(["run"])
        assert args.scheduler == "random"
        args = build_parser().parse_args(["run", "--scheduler", "ring-graph"])
        assert args.scheduler == "ring-graph"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheduler", "torus"])

    def test_graph_scheduler_single_run(self, capsys):
        from repro.cli import main

        exit_code = main([
            "run", "--protocol", "epidemic", "--population", "16",
            "--scheduler", "ring-graph", "--trace-policy", "counts-only",
            "--max-steps", "20000", "--seed", "5",
        ])
        assert exit_code == 0
        assert "converged" in capsys.readouterr().out

    def test_graph_scheduler_repeated_runs_through_spec(self, capsys):
        from repro.cli import main

        exit_code = main([
            "run", "--protocol", "epidemic", "--population", "12",
            "--scheduler", "star-graph", "--trace-policy", "counts-only",
            "--runs", "3", "--max-steps", "20000", "--seed", "5",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "3/3" in output
