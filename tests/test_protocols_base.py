"""Unit tests for the protocol abstractions (two-way and one-way)."""

import pytest

from repro.protocols.protocol import (
    OneWayProtocol,
    PopulationProtocol,
    ProtocolError,
    RuleBasedOneWayProtocol,
    RuleBasedProtocol,
    two_way_from_functions,
)


@pytest.fixture
def toggle_protocol():
    """A tiny protocol: the starter flips the reactor's bit."""
    return RuleBasedProtocol(
        rules={(0, 0): (0, 1), (0, 1): (0, 0), (1, 0): (1, 1), (1, 1): (1, 0)},
        initial_states=[0, 1],
        name="toggle",
    )


class TestRuleBasedProtocol:
    def test_rules_applied(self, toggle_protocol):
        assert toggle_protocol.delta(0, 0) == (0, 1)
        assert toggle_protocol.delta(1, 1) == (1, 0)

    def test_missing_rule_is_silent(self):
        protocol = RuleBasedProtocol(rules={("a", "b"): ("x", "y")})
        assert protocol.delta("b", "a") == ("b", "a")

    def test_states_inferred_from_rules(self):
        protocol = RuleBasedProtocol(rules={("a", "b"): ("x", "y")})
        assert protocol.states == frozenset({"a", "b", "x", "y"})

    def test_explicit_states_are_merged(self):
        protocol = RuleBasedProtocol(rules={("a", "b"): ("a", "a")}, states=["c"])
        assert "c" in protocol.states
        assert "a" in protocol.states

    def test_rules_property_returns_copy(self, toggle_protocol):
        rules = toggle_protocol.rules
        rules[(9, 9)] = (9, 9)
        assert (9, 9) not in toggle_protocol.rules

    def test_output_map(self):
        protocol = RuleBasedProtocol(rules={}, states=["a"], output_map={"a": True})
        assert protocol.output("a") is True
        assert protocol.output("missing") is None

    def test_initial_states_must_be_subset(self):
        with pytest.raises(ProtocolError):
            RuleBasedProtocol(rules={("a", "a"): ("a", "a")}, initial_states=["zzz"])


class TestPopulationProtocolHelpers:
    def test_fs_fr_components(self, toggle_protocol):
        assert toggle_protocol.fs(0, 1) == 0
        assert toggle_protocol.fr(0, 1) == 0

    def test_state_count(self, toggle_protocol):
        assert toggle_protocol.state_count() == 2

    def test_state_count_unbounded_raises(self):
        class Unbounded(PopulationProtocol):
            def delta(self, starter, reactor):
                return starter, reactor

        with pytest.raises(ProtocolError):
            Unbounded().state_count()

    def test_is_finite_state(self, toggle_protocol):
        assert toggle_protocol.is_finite_state

    def test_validate_initial_state(self, toggle_protocol):
        toggle_protocol.validate_initial_state(0)
        with pytest.raises(ProtocolError):
            toggle_protocol.validate_initial_state(7)

    def test_validate_initial_state_unrestricted(self):
        class AnyInitial(PopulationProtocol):
            def delta(self, starter, reactor):
                return starter, reactor

        AnyInitial().validate_initial_state("anything")

    def test_is_symmetric_on(self):
        symmetric = RuleBasedProtocol(
            rules={("c", "p"): ("cs", "bot"), ("p", "c"): ("bot", "cs")}
        )
        assert symmetric.is_symmetric_on("c", "p")
        asymmetric = RuleBasedProtocol(rules={("L", "L"): ("F", "L")})
        assert not asymmetric.is_symmetric_on("L", "L")

    def test_is_silent_on(self, toggle_protocol):
        assert not toggle_protocol.is_silent_on(0, 0)
        silent = RuleBasedProtocol(rules={})
        # With no states inferred there is nothing to check, so build one:
        silent2 = RuleBasedProtocol(rules={("a", "b"): ("a", "b")})
        assert silent2.is_silent_on("a", "b")

    def test_enumerate_transitions_covers_all_pairs(self, toggle_protocol):
        table = toggle_protocol.enumerate_transitions()
        assert len(table) == 4
        assert table[(0, 1)] == (0, 0)

    def test_is_closed(self, toggle_protocol):
        assert toggle_protocol.is_closed()

    def test_is_closed_detects_escape(self):
        class Escaping(PopulationProtocol):
            def delta(self, starter, reactor):
                return "outside", reactor

        protocol = Escaping(states=["a", "b"])
        assert not protocol.is_closed()

    def test_default_output_is_none(self, toggle_protocol):
        assert toggle_protocol.output(0) is None

    def test_repr_mentions_name(self, toggle_protocol):
        assert "toggle" in repr(toggle_protocol)


class TestFunctionalProtocol:
    def test_two_way_from_functions(self):
        protocol = two_way_from_functions(
            fs=lambda s, r: s + r,
            fr=lambda s, r: s - r,
            name="arith",
        )
        assert protocol.delta(5, 3) == (8, 2)
        assert protocol.name == "arith"


class TestOneWayProtocol:
    def test_default_g_is_identity(self):
        class Observe(OneWayProtocol):
            def f(self, starter, reactor):
                return starter

        protocol = Observe()
        assert protocol.g("state") == "state"

    def test_default_omission_handlers_are_identity(self):
        class Observe(OneWayProtocol):
            def f(self, starter, reactor):
                return starter

        protocol = Observe()
        assert protocol.on_starter_omission("x") == "x"
        assert protocol.on_reactor_omission("y") == "y"

    def test_f_is_abstract(self):
        protocol = OneWayProtocol()
        with pytest.raises(NotImplementedError):
            protocol.f("a", "b")

    def test_rule_based_one_way(self):
        protocol = RuleBasedOneWayProtocol(
            f_rules={("I", "S"): "I"},
            g_rules={"I": "I*"},
            name="epidemic-with-marking",
        )
        assert protocol.f("I", "S") == "I"
        assert protocol.f("S", "S") == "S"
        assert protocol.g("I") == "I*"
        assert protocol.g("S") == "S"

    def test_rule_based_one_way_infers_states(self):
        protocol = RuleBasedOneWayProtocol(f_rules={("I", "S"): "I"})
        assert protocol.states == frozenset({"I", "S"})

    def test_repr_mentions_name(self):
        protocol = RuleBasedOneWayProtocol(f_rules={}, states=["a"], name="one-way-x")
        assert "one-way-x" in repr(protocol)
