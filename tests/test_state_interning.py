"""State interning and the ``ArrayConfiguration`` view.

These are the numpy-free foundations of the array engine: the tests run on
every install (no ``repro[fast]`` extra required) and pin

* the :class:`~repro.protocols.state.StateInterner` round-trip properties
  (encode/decode bijection, deduplication, deterministic order, clear
  errors on unknown states);
* the :class:`~repro.protocols.state.ArrayConfiguration` read API mirroring
  :class:`~repro.protocols.state.Configuration`;
* the ``state_order()`` export on every catalog protocol (a canonical
  permutation of the declared state set — the array engine's interning
  contract).
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trivial import TrivialTwoWaySimulator
from repro.protocols.catalog import CATALOG
from repro.protocols.catalog.epidemic import OneWayEpidemicProtocol
from repro.protocols.protocol import ProtocolError, RuleBasedProtocol
from repro.protocols.state import (
    ArrayConfiguration,
    Configuration,
    InterningError,
    MutableConfiguration,
    StateInterner,
)

# Hashable, repr-distinguishable states of the kinds the catalog uses.
state_values = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.text(min_size=1, max_size=3),
    st.tuples(st.integers(min_value=0, max_value=5), st.booleans()),
)


class TestStateInterner:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(state_values, min_size=1, max_size=20, unique=True))
    def test_round_trip_bijection(self, states):
        interner = StateInterner(states)
        assert len(interner) == len(states)
        for index, state in enumerate(states):
            assert interner.encode(state) == index
            assert interner.decode(index) == state
        assert interner.decode_all(interner.encode_all(states)) == states

    @settings(max_examples=50, deadline=None)
    @given(st.lists(state_values, min_size=1, max_size=30))
    def test_duplicates_collapse_to_first_occurrence(self, states):
        interner = StateInterner(states)
        unique_in_order = list(dict.fromkeys(states))
        assert list(interner.states) == unique_in_order
        for state in states:
            assert interner.decode(interner.encode(state)) == state

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(state_values, min_size=1, max_size=20, unique=True),
        st.lists(state_values, min_size=1, max_size=50),
    )
    def test_encode_all_round_trips_configurations(self, universe, draw):
        interner = StateInterner(universe)
        population = [universe[hash(d) % len(universe)] for d in range(len(draw))]
        codes = interner.encode_all(Configuration(population))
        assert interner.decode_all(codes) == population

    def test_unknown_state_raises_with_known_states_in_message(self):
        interner = StateInterner(["S", "I"])
        with pytest.raises(InterningError, match="'R'.*not in the interned"):
            interner.encode("R")
        with pytest.raises(InterningError):
            interner.encode_all(["S", "R"])

    def test_membership_and_empty_rejection(self):
        interner = StateInterner([0, 1])
        assert 0 in interner and 1 in interner and 2 not in interner
        with pytest.raises(ValueError):
            StateInterner([])


class TestArrayConfiguration:
    def _view(self, states):
        interner = StateInterner(sorted(set(states), key=repr))
        return ArrayConfiguration(interner.encode_all(states), interner), states

    @settings(max_examples=50, deadline=None)
    @given(st.lists(state_values, min_size=1, max_size=30))
    def test_mirrors_configuration_read_api(self, states):
        view, _ = self._view(states)
        reference = Configuration(states)
        assert len(view) == len(reference)
        assert list(view) == list(reference)
        assert view.states == reference.states
        assert view.multiset() == reference.multiset()
        assert view.histogram() == reference.histogram()
        for state in set(states):
            assert view.count(state) == reference.count(state)
        assert view.count(object()) == 0
        assert view.count_if(lambda s: True) == len(states)
        assert view.freeze() == reference
        assert view == reference
        assert view.same_multiset(reference)

    def test_equality_and_projection(self):
        view, states = self._view(["a", "b", "a"])
        assert view == ("a", "b", "a")
        assert view == MutableConfiguration(["a", "b", "a"])
        assert view != Configuration(["b", "a", "a"])
        assert view.project(str.upper) == Configuration(["A", "B", "A"])
        assert view[1] == "b"
        assert view.__hash__ is None

    def test_multiset_interop_with_counter(self):
        view, _ = self._view([1, 1, 2])
        assert view._cached_multiset() == Counter({1: 2, 2: 1})


class TestCatalogStateOrder:
    """Every catalog protocol exports a canonical, complete interning order."""

    @pytest.mark.parametrize("name", sorted(CATALOG))
    def test_state_order_is_a_permutation_of_the_state_set(self, name):
        protocol = CATALOG[name]()
        order = protocol.state_order()
        assert isinstance(order, tuple)
        assert len(order) == len(set(order)), "state_order must not repeat states"
        assert set(order) == set(protocol.states)

    @pytest.mark.parametrize("name", sorted(CATALOG))
    def test_state_order_is_deterministic(self, name):
        assert CATALOG[name]().state_order() == CATALOG[name]().state_order()

    def test_trivial_simulator_delegates_to_protocol(self):
        protocol = CATALOG["pairing"]()
        simulator = TrivialTwoWaySimulator(protocol)
        assert simulator.state_order() == protocol.state_order()

    def test_one_way_epidemic_exports_an_order(self):
        assert OneWayEpidemicProtocol().state_order() == ("S", "I")

    def test_generic_order_sorts_by_repr(self):
        protocol = RuleBasedProtocol({("x", "y"): ("y", "y")}, name="tiny")
        assert protocol.state_order() == tuple(sorted(protocol.states, key=repr))

    def test_unbounded_state_space_raises(self):
        from repro.core.skno import SKnOSimulator

        simulator = SKnOSimulator(CATALOG["pairing"](), omission_bound=1)
        with pytest.raises(ProtocolError, match="unbounded"):
            simulator.state_order()
