"""Budget-aware batched adversary protocol == per-step interleaving.

Two layers of pins:

* **Protocol layer.**  For every adversary class,
  :meth:`~repro.adversary.omission.OmissionAdversary.plan_interactions`
  produces exactly the interaction sequence of the per-step interleaving —
  injections consulted once per scheduled draw via ``interactions_before``,
  truncated to the live budget with one unit reserved for the scheduled
  interaction — and leaves the adversary in the identical internal state
  (RNG position *and* omission budget, including budget consumed by
  injections the truncation discarded).  Checked property-based over
  random chunkings, budgets and seeds.

* **Engine layer.**  With the single chunked ``run_core`` loop, the
  executed run is independent of ``chunk_size`` for every adversary class
  × scheduler class × trace policy — ``chunk_size=1`` being the per-step
  loop — including budget exhaustion mid-chunk, stop conditions firing
  mid-chunk, scripted-scheduler exhaustion mid-chunk and the
  omission-budget-exactly-consumed boundary.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.omission import (
    BoundedOmissionAdversary,
    NO1Adversary,
    NOAdversary,
    NoOmissionAdversary,
    UOAdversary,
    plan_interactions_per_step,
)
from repro.engine.engine import SimulationEngine
from repro.interaction.models import get_model
from repro.interaction.omissions import REACTOR_OMISSION
from repro.protocols.catalog.epidemic import (
    INFORMED,
    SUSCEPTIBLE,
    OneWayEpidemicProtocol,
)
from repro.protocols.state import Configuration
from repro.scheduling.graph_scheduler import random_graph_scheduler, ring_scheduler
from repro.scheduling.runs import Interaction, Run
from repro.scheduling.scheduler import (
    RandomScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
    WeightedPairScheduler,
)

MODEL = get_model("I3")  # one-way, admits omissions


class PerStepOnlyAdversary:
    """Duck-typed adversary speaking only the per-step protocol.

    Exercises the engine's fallback wrapping
    (:func:`plan_interactions_per_step`): floods ``flood`` omissive
    interactions before every scheduled one, deterministically.
    """

    def __init__(self, flood=2):
        self.flood = flood

    def interactions_before(self, step, scheduled, n):
        return [
            Interaction((step + i) % n, ((step + i) % n + 1) % n,
                        omission=REACTOR_OMISSION)
            for i in range(self.flood)
        ]


# (name, factory(seed)) covering every adversary class, fresh per call.
ADVERSARIES = [
    ("none", lambda seed: None),
    ("no-omission", lambda seed: NoOmissionAdversary()),
    ("uo", lambda seed: UOAdversary(MODEL, rate=0.6, max_per_gap=4, seed=seed)),
    ("no", lambda seed: NOAdversary(
        MODEL, active_steps=37, rate=0.7, max_per_gap=3, seed=seed)),
    ("bounded", lambda seed: BoundedOmissionAdversary(
        MODEL, max_omissions=5, rate=0.5, seed=seed)),
    ("no1", lambda seed: NO1Adversary(MODEL, inject_at=11, seed=seed)),
    ("duck-per-step", lambda seed: PerStepOnlyAdversary(flood=2)),
]

SCRIPT = Run([Interaction(i % 9, (i + 1 + i % 3) % 9) for i in range(150)])

# (name, factory()) covering every scheduler class, fresh per call.
SCHEDULERS = [
    ("random", lambda: RandomScheduler(10, seed=5)),
    ("round-robin", lambda: RoundRobinScheduler(10)),
    ("weighted", lambda: WeightedPairScheduler(
        10, weights={(0, 1): 3.0, (1, 2): 1.0, (3, 0): 0.5, (4, 5): 2.0}, seed=21)),
    ("scripted+continuation", lambda: ScriptedScheduler(
        SCRIPT, continuation=RoundRobinScheduler(9))),
    ("scripted-finite", lambda: ScriptedScheduler(SCRIPT)),
    ("graph-ring", lambda: ring_scheduler(10, seed=3)),
    ("graph-random", lambda: random_graph_scheduler(10, 0.4, seed=2)),
]

POLICIES = ("full", "counts-only", "ring")


def build_engine(adversary_factory, scheduler_factory, seed):
    return SimulationEngine(
        OneWayEpidemicProtocol(), MODEL, scheduler_factory(),
        adversary=adversary_factory(seed))


def initial(n=10):
    return Configuration([INFORMED] + [SUSCEPTIBLE] * (n - 1))


def run_result_key(result):
    return (
        result.steps,
        result.omissions,
        result.final_configuration,
        result.stopped,
        None if result.trace is None else list(result.trace),
        result.last_steps,
    )


# ---------------------------------------------------------------------------
# engine layer: chunk independence over the full class product
# ---------------------------------------------------------------------------


class TestChunkIndependenceEveryClassProduct:
    @pytest.mark.parametrize("adversary_name,adversary_factory", ADVERSARIES,
                             ids=lambda x: x if isinstance(x, str) else "")
    @pytest.mark.parametrize("scheduler_name,scheduler_factory", SCHEDULERS,
                             ids=lambda x: x if isinstance(x, str) else "")
    @pytest.mark.parametrize("policy", POLICIES)
    def test_batched_equals_per_step(
        self, adversary_name, adversary_factory, scheduler_name,
        scheduler_factory, policy,
    ):
        reference = build_engine(adversary_factory, scheduler_factory, seed=9).execute(
            initial(), 300, trace_policy=policy, ring_size=16, chunk_size=1)
        for chunk_size in (2, 7, 64, 1024):
            result = build_engine(adversary_factory, scheduler_factory, seed=9).execute(
                initial(), 300, trace_policy=policy, ring_size=16,
                chunk_size=chunk_size)
            assert run_result_key(result) == run_result_key(reference), (
                f"chunk_size={chunk_size} diverged from per-step execution")

    @pytest.mark.parametrize("adversary_name,adversary_factory", ADVERSARIES,
                             ids=lambda x: x if isinstance(x, str) else "")
    def test_adversary_end_state_matches_per_step(
        self, adversary_name, adversary_factory,
    ):
        """The adversary's own budget accounting is chunking-independent."""
        def total_injected(chunk_size):
            engine = build_engine(adversary_factory, SCHEDULERS[0][1], seed=4)
            engine.execute(initial(), 220, trace_policy="counts-only",
                           chunk_size=chunk_size)
            return getattr(engine.adversary, "total_injected", None)

        reference = total_injected(1)
        for chunk_size in (3, 64, 1024):
            assert total_injected(chunk_size) == reference


class TestStopConditionMidChunk:
    @pytest.mark.parametrize("adversary_name,adversary_factory", ADVERSARIES,
                             ids=lambda x: x if isinstance(x, str) else "")
    def test_stop_condition_identical_across_chunk_sizes(
        self, adversary_name, adversary_factory,
    ):
        stop = lambda c: c.count(INFORMED) >= 5  # noqa: E731

        def run(chunk_size):
            return build_engine(adversary_factory, SCHEDULERS[0][1], seed=7).execute(
                initial(), 5_000, stop_condition=stop, trace_policy="full",
                chunk_size=chunk_size)

        reference = run(1)
        for chunk_size in (2, 64, 1024):
            assert run_result_key(run(chunk_size)) == run_result_key(reference)

    def test_stop_mid_chunk_adversary_lookahead_is_chunk_bounded(self):
        """The documented stop-condition contract: run results are
        chunking-independent, but the adversary plans the current chunk
        before the stop fires, so its internal state may sit up to one
        chunk ahead of the last executed interaction (the Definitions 1/2
        rewriter rewriting ahead of the execution prefix).  chunk_size=1
        reproduces the per-step state exactly."""
        def run(chunk_size):
            adversary = BoundedOmissionAdversary(
                MODEL, max_omissions=1000, rate=1.0, seed=3)
            engine = SimulationEngine(
                OneWayEpidemicProtocol(), MODEL, RoundRobinScheduler(10),
                adversary=adversary)
            seen = {"count": 0}

            def stop(_configuration):
                seen["count"] += 1
                return seen["count"] >= 3

            result = engine.execute(initial(), 10_000, stop_condition=stop,
                                    trace_policy="full", chunk_size=chunk_size)
            return result, adversary

        reference, per_step_adversary = run(1)
        assert reference.steps == 3
        # rate=1.0: [inject, scheduled, inject] executed; the per-step loop
        # consulted the adversary for exactly the two started gaps.
        assert per_step_adversary.total_injected == 2

        for chunk_size in (4, 64):
            result, adversary = run(chunk_size)
            # Run results never move...
            assert run_result_key(result) == run_result_key(reference)
            # ...but the whole chunk was planned before the stop fired:
            # one injection per gap, for min(chunk, budget-limited) gaps.
            assert adversary.total_injected == min(chunk_size, 5_000)


class TestBudgetExhaustionMidChunk:
    def test_injections_consume_budget_mid_chunk(self):
        """rate=1.0 bounded adversary: one injection per gap until the step
        budget starves one — which is discarded but still charged."""
        def run(chunk_size):
            adversary = BoundedOmissionAdversary(
                MODEL, max_omissions=100, rate=1.0, seed=3)
            engine = SimulationEngine(
                OneWayEpidemicProtocol(), MODEL, RoundRobinScheduler(10),
                adversary=adversary)
            result = engine.execute(
                initial(), 5, trace_policy="full", chunk_size=chunk_size)
            return result, adversary

        reference, reference_adversary = run(1)
        assert reference.steps == 5
        # Gaps 0 and 1 fit injection+scheduled (4 steps); gap 2 has 1 unit
        # of budget left: its injection is discarded, the scheduled one runs.
        assert reference.omissions == 2
        assert reference_adversary.total_injected == 3
        for chunk_size in (2, 3, 64):
            result, adversary = run(chunk_size)
            assert run_result_key(result) == run_result_key(reference)
            assert adversary.total_injected == reference_adversary.total_injected

    def test_flooding_duck_adversary_budget_semantics(self):
        """The documented seed semantics (pinned in test_engine.py) survive
        the unified chunked loop at every chunk size."""
        for chunk_size in (1, 2, 64):
            engine = SimulationEngine(
                OneWayEpidemicProtocol(), get_model("I1"), RoundRobinScheduler(3),
                adversary=PerStepOnlyAdversary(flood=3))
            trace = engine.execute(
                Configuration([INFORMED, SUSCEPTIBLE, SUSCEPTIBLE]), 2,
                trace_policy="full", chunk_size=chunk_size).trace
            steps = list(trace)
            assert len(steps) == 2
            assert steps[0].interaction.is_omissive
            assert not steps[1].interaction.is_omissive  # the scheduled one


class TestOmissionBudgetExactlyConsumed:
    @pytest.mark.parametrize("chunk_size", [1, 2, 5, 64])
    def test_bounded_adversary_exact_exhaustion(self, chunk_size):
        """max_omissions hit exactly mid-run: injections stop, the run
        continues as pass-through, and the RNG is no longer consumed."""
        adversary = BoundedOmissionAdversary(MODEL, max_omissions=3, rate=1.0, seed=1)
        engine = SimulationEngine(
            OneWayEpidemicProtocol(), MODEL, RoundRobinScheduler(10),
            adversary=adversary)
        result = engine.execute(initial(), 100, trace_policy="full",
                                chunk_size=chunk_size)
        assert adversary.total_injected == 3
        assert result.omissions == 3
        # rate=1.0 injects at gaps 0,1,2: interactions 0,2,4 are omissive.
        omissive_positions = [
            index for index, step in enumerate(result.trace)
            if step.interaction.is_omissive]
        assert omissive_positions == [0, 2, 4]
        # After exhaustion the per-step protocol stops drawing the RNG; the
        # batched pass-through must too.
        state_after = adversary._rng.getstate()
        reference = BoundedOmissionAdversary(MODEL, max_omissions=3, rate=1.0, seed=1)
        for gap in range(5):
            reference.interactions_before(
                step=gap, scheduled=Interaction(0, 1), n=10)
        assert state_after == reference._rng.getstate()

    @pytest.mark.parametrize("chunk_size", [1, 3, 64])
    def test_no1_single_omission_pinned_step(self, chunk_size):
        adversary = NO1Adversary(MODEL, inject_at=11, pair=(2, 3), seed=0)
        engine = SimulationEngine(
            OneWayEpidemicProtocol(), MODEL, RoundRobinScheduler(10),
            adversary=adversary)
        result = engine.execute(initial(), 60, trace_policy="full",
                                chunk_size=chunk_size)
        assert adversary.total_injected == 1
        assert result.omissions == 1
        steps = list(result.trace)
        # 11 scheduled interactions precede the injection.
        assert steps[11].interaction.pair == (2, 3)
        assert steps[11].interaction.is_omissive


# ---------------------------------------------------------------------------
# protocol layer: plan_interactions == per-step interleaving, state included
# ---------------------------------------------------------------------------


def per_step_interleaving(adversary, start_step, scheduled, n, budget):
    """Independent reference: the per-step loop's interleaving for a chunk."""
    out = []
    consumed = 0
    executed = 0
    for offset, scheduled_interaction in enumerate(scheduled):
        if budget is not None and budget - executed < 1:
            break
        injected = adversary.interactions_before(
            step=start_step + offset, scheduled=scheduled_interaction, n=n)
        if budget is not None:
            room = budget - executed - 1
            injected = injected[:room]
        out.extend(injected)
        out.append(scheduled_interaction)
        executed += len(injected) + 1
        consumed += 1
    return out, consumed


def adversary_state(adversary):
    rng = getattr(adversary, "_rng", None)
    return (
        getattr(adversary, "total_injected", None),
        None if rng is None else rng.getstate(),
    )


planful_adversaries = st.sampled_from(
    [name for name, _ in ADVERSARIES if name != "none"])
seeds = st.integers(min_value=0, max_value=10_000)
populations = st.integers(min_value=3, max_value=12)
chunkings = st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=8)
budgets = st.one_of(st.none(), st.integers(min_value=0, max_value=250))


def make_adversary(name, seed):
    return dict(ADVERSARIES)[name](seed)


def call_plan(adversary, step, scheduled, n, budget):
    """Invoke the batched protocol the way the engine does: duck-typed
    per-step-only adversaries go through the reference wrapper."""
    plan = getattr(adversary, "plan_interactions", None)
    if plan is None:
        return plan_interactions_per_step(adversary, step, scheduled, n, budget)
    return plan(step, scheduled, n, budget)


class TestPlanProtocolEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(name=planful_adversaries, seed=seeds, n=populations,
           chunking=chunkings, budget=budgets)
    def test_chunked_plans_equal_per_step_interleaving(
        self, name, seed, n, chunking, budget,
    ):
        """Emulates the engine's chunk loop on both protocols in lockstep:
        identical interaction sequences AND identical adversary end state,
        whatever the chunking and wherever the budget lands."""
        batched = make_adversary(name, seed)
        reference = make_adversary(name, seed)
        stream = RandomScheduler(n, seed=seed + 1)
        step = 0
        remaining = budget
        for chunk_length in chunking:
            if remaining is not None:
                chunk_length = min(chunk_length, remaining)
            if chunk_length == 0:
                break
            chunk = stream.next_interactions(step, chunk_length)
            plan = call_plan(batched, step, chunk, n, remaining)
            expected, expected_consumed = per_step_interleaving(
                reference, step, chunk, n, remaining)
            assert plan.interactions == expected
            assert plan.consumed == expected_consumed
            assert adversary_state(batched) == adversary_state(reference)
            step += len(chunk)
            if remaining is not None:
                remaining -= len(plan.interactions)
        assert adversary_state(batched) == adversary_state(reference)

    @settings(max_examples=60, deadline=None)
    @given(name=planful_adversaries, seed=seeds, n=populations,
           length=st.integers(min_value=0, max_value=60),
           budget=budgets)
    def test_default_walk_and_override_agree(self, name, seed, n, length, budget):
        """Every vectorized override equals the base-class reference walk."""
        override = make_adversary(name, seed)
        base = make_adversary(name, seed)
        chunk = RandomScheduler(n, seed=seed + 2).next_interactions(0, length)
        got = call_plan(override, 0, chunk, n, budget)
        expected = plan_interactions_per_step(base, 0, chunk, n, budget)
        assert got == expected
        assert adversary_state(override) == adversary_state(base)

    def test_discarded_injections_still_charge_the_omission_budget(self):
        adversary = BoundedOmissionAdversary(MODEL, max_omissions=10, rate=1.0, seed=0)
        chunk = RoundRobinScheduler(6).next_interactions(0, 4)
        # Budget 5: gaps 0 and 1 keep their injections (4 executed), gap 2
        # has 1 unit left — injection discarded, scheduled kept; gap 3 is
        # not consumed at all.
        plan = adversary.plan_interactions(0, chunk, 6, 5)
        assert plan.consumed == 3
        assert plan.discarded == 1
        assert len(plan.interactions) == 5
        assert adversary.total_injected == 3  # the discarded one still counted

    def test_plan_on_empty_chunk_is_empty_and_free(self):
        for name, factory in ADVERSARIES:
            if name == "none":
                continue
            adversary = factory(3)
            before = adversary_state(adversary)
            plan = call_plan(adversary, 0, [], 5, 100)
            assert plan.interactions == [] and plan.consumed == 0
            assert adversary_state(adversary) == before

    def test_zero_budget_consumes_nothing(self):
        for name, factory in ADVERSARIES:
            if name == "none":
                continue
            adversary = factory(3)
            chunk = RoundRobinScheduler(5).next_interactions(0, 4)
            before = adversary_state(adversary)
            plan = call_plan(adversary, 0, chunk, 5, 0)
            assert plan.interactions == [] and plan.consumed == 0
            assert adversary_state(adversary) == before


class TestNOPassThroughFastPath:
    def test_past_active_steps_consumes_no_rng(self):
        adversary = NOAdversary(MODEL, active_steps=10, rate=0.9, seed=1)
        state = random.Random(1).getstate()
        assert adversary._rng.getstate() == state
        chunk = RoundRobinScheduler(8).next_interactions(0, 30)
        plan = adversary.plan_interactions(10, chunk, 8, None)
        assert plan.interactions == list(chunk)
        assert adversary._rng.getstate() == state  # untouched

    def test_active_boundary_inside_chunk(self):
        """A chunk straddling active_steps: geometric walk for the head,
        pure pass-through for the tail — equal to the per-step reference."""
        batched = NOAdversary(MODEL, active_steps=5, rate=0.8, max_per_gap=3, seed=2)
        reference = NOAdversary(MODEL, active_steps=5, rate=0.8, max_per_gap=3, seed=2)
        chunk = RoundRobinScheduler(8).next_interactions(0, 20)
        plan = batched.plan_interactions(0, chunk, 8, None)
        expected, consumed = per_step_interleaving(reference, 0, chunk, 8, None)
        assert plan.interactions == expected
        assert plan.consumed == consumed == 20
        assert adversary_state(batched) == adversary_state(reference)
