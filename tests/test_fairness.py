"""Unit tests for the fairness / coverage diagnostics."""

from repro.interaction.omissions import REACTOR_OMISSION
from repro.scheduling.fairness import fairness_report, interaction_counts, pair_coverage
from repro.scheduling.runs import Interaction, Run
from repro.scheduling.scheduler import RandomScheduler, RoundRobinScheduler


class TestInteractionCounts:
    def test_counts_ordered_pairs(self):
        run = Run.from_pairs([(0, 1), (0, 1), (1, 0)])
        counts = interaction_counts(run)
        assert counts[(0, 1)] == 2
        assert counts[(1, 0)] == 1


class TestPairCoverage:
    def test_full_coverage(self):
        run = Run.from_pairs([(s, r) for s in range(3) for r in range(3) if s != r])
        assert pair_coverage(run, 3) == 1.0

    def test_partial_coverage(self):
        run = Run.from_pairs([(0, 1)])
        assert pair_coverage(run, 3) == 1 / 6

    def test_single_agent(self):
        assert pair_coverage(Run(), 1) == 1.0


class TestFairnessReport:
    def test_round_robin_prefix_is_fully_covered(self):
        scheduler = RoundRobinScheduler(4)
        run = Run(scheduler.next_interaction(i) for i in range(12))
        report = fairness_report(run, 4)
        assert report.full_pair_coverage
        assert report.no_agent_starved
        assert report.min_pair_count == 1
        assert report.max_pair_count == 1

    def test_random_scheduler_long_run_covers_everything(self):
        scheduler = RandomScheduler(4, seed=0)
        run = Run(scheduler.next_interaction(i) for i in range(600))
        report = fairness_report(run, 4)
        assert report.full_pair_coverage
        assert report.pair_coverage_ratio == 1.0
        assert report.no_agent_starved

    def test_starved_agent_detected(self):
        run = Run.from_pairs([(0, 1), (1, 0)])
        report = fairness_report(run, 3)
        assert not report.no_agent_starved
        assert not report.full_pair_coverage

    def test_omissions_counted(self):
        run = Run([Interaction(0, 1, omission=REACTOR_OMISSION), Interaction(1, 0)])
        report = fairness_report(run, 2)
        assert report.omissions == 1

    def test_summary_is_a_string(self):
        report = fairness_report(Run.from_pairs([(0, 1)]), 2)
        assert "pairs=" in report.summary()

    def test_empty_run(self):
        report = fairness_report(Run(), 3)
        assert report.steps == 0
        assert report.ordered_pairs_covered == 0
        assert not report.no_agent_starved
