"""Unit tests for execution traces."""

import pytest

from repro.engine.trace import Trace, TraceStep
from repro.interaction.omissions import REACTOR_OMISSION
from repro.protocols.state import Configuration
from repro.scheduling.runs import Interaction


@pytest.fixture
def small_trace():
    """A hand-built trace of three interactions over three agents."""
    trace = Trace(Configuration(["a", "b", "c"]))
    trace.record(Interaction(0, 1), "a1", "b1")
    trace.record(Interaction(1, 2), "b1", "c1")  # silent for agent 1
    trace.record(Interaction(2, 0, omission=REACTOR_OMISSION), "c2", "a1")
    return trace


class TestRecording:
    def test_lengths(self, small_trace):
        assert len(small_trace) == 3
        assert small_trace.n == 3

    def test_initial_and_final(self, small_trace):
        assert small_trace.initial_configuration == Configuration(["a", "b", "c"])
        assert small_trace.final_configuration == Configuration(["a1", "b1", "c2"])

    def test_steps_record_pre_and_post(self, small_trace):
        step = small_trace[0]
        assert step.starter_pre == "a" and step.starter_post == "a1"
        assert step.reactor_pre == "b" and step.reactor_post == "b1"

    def test_step_indices_are_sequential(self, small_trace):
        assert [step.index for step in small_trace] == [0, 1, 2]

    def test_changed_agents(self, small_trace):
        assert small_trace[0].changed_agents == (0, 1)
        assert small_trace[1].changed_agents == (2,)

    def test_is_silent(self):
        trace = Trace(Configuration(["x", "y"]))
        step = trace.record(Interaction(0, 1), "x", "y")
        assert step.is_silent

    def test_repr(self, small_trace):
        assert "steps=3" in repr(small_trace)


class TestDerivedData:
    def test_run_reconstruction(self, small_trace):
        run = small_trace.run()
        assert len(run) == 3
        assert run[2].is_omissive

    def test_omission_count(self, small_trace):
        assert small_trace.omission_count() == 1

    def test_configurations_sequence(self, small_trace):
        configs = list(small_trace.configurations())
        assert len(configs) == 4
        assert configs[0] == Configuration(["a", "b", "c"])
        assert configs[-1] == small_trace.final_configuration

    def test_configuration_at(self, small_trace):
        assert small_trace.configuration_at(0) == Configuration(["a", "b", "c"])
        assert small_trace.configuration_at(1) == Configuration(["a1", "b1", "c"])
        assert small_trace.configuration_at(3) == small_trace.final_configuration

    def test_configuration_at_out_of_range(self, small_trace):
        with pytest.raises(IndexError):
            small_trace.configuration_at(4)

    def test_projected_configurations(self, small_trace):
        projected = list(small_trace.projected_configurations(lambda s: s[0]))
        assert projected[0] == Configuration(["a", "b", "c"])
        assert projected[-1] == Configuration(["a", "b", "c"])

    def test_final_projected(self, small_trace):
        assert small_trace.final_projected(lambda s: s.upper()) == Configuration(
            ["A1", "B1", "C2"])

    def test_non_silent_steps(self, small_trace):
        assert len(small_trace.non_silent_steps()) == 3

    def test_steps_involving(self, small_trace):
        assert len(small_trace.steps_involving(0)) == 2
        assert len(small_trace.steps_involving(1)) == 2
        assert len(small_trace.steps_involving(2)) == 2

    def test_consistency_between_configurations_and_deltas(self, small_trace):
        """Reconstructed configurations chain correctly through the deltas."""
        configs = list(small_trace.configurations())
        for step, (before, after) in zip(small_trace, zip(configs, configs[1:])):
            assert before[step.interaction.starter] == step.starter_pre
            assert before[step.interaction.reactor] == step.reactor_pre
            assert after[step.interaction.starter] == step.starter_post
            assert after[step.interaction.reactor] == step.reactor_post
