"""Unit tests for the leader-election and majority catalog protocols."""

import pytest

from repro.protocols.catalog.leader_election import FOLLOWER, LEADER, LeaderElectionProtocol
from repro.protocols.catalog.majority import (
    A,
    B,
    UNDECIDED,
    WEAK_A,
    WEAK_B,
    ApproximateMajorityProtocol,
    ExactMajorityProtocol,
)


class TestLeaderElection:
    def test_two_leaders_meet(self, leader_election):
        assert leader_election.delta(LEADER, LEADER) == (FOLLOWER, LEADER)

    @pytest.mark.parametrize(
        "starter,reactor",
        [(LEADER, FOLLOWER), (FOLLOWER, LEADER), (FOLLOWER, FOLLOWER)],
    )
    def test_other_pairs_silent(self, leader_election, starter, reactor):
        assert leader_election.delta(starter, reactor) == (starter, reactor)

    def test_leader_count_never_increases(self, leader_election):
        for starter in leader_election.states:
            for reactor in leader_election.states:
                before = [starter, reactor].count(LEADER)
                after = list(leader_election.delta(starter, reactor)).count(LEADER)
                assert after <= before

    def test_leader_count_never_reaches_zero(self, leader_election):
        for starter in leader_election.states:
            for reactor in leader_election.states:
                before = [starter, reactor].count(LEADER)
                after = list(leader_election.delta(starter, reactor)).count(LEADER)
                if before > 0:
                    assert after > 0

    def test_output(self, leader_election):
        assert leader_election.output(LEADER) is True
        assert leader_election.output(FOLLOWER) is False

    def test_initial_configuration(self):
        config = LeaderElectionProtocol.initial_configuration(5)
        assert config.count(LEADER) == 5

    def test_has_converged(self):
        from repro.protocols.state import Configuration

        assert LeaderElectionProtocol.has_converged(Configuration([LEADER, FOLLOWER]))
        assert not LeaderElectionProtocol.has_converged(Configuration([LEADER, LEADER]))


class TestApproximateMajority:
    def test_decided_undecides_opponent(self, approximate_majority):
        assert approximate_majority.delta(A, B) == (A, UNDECIDED)
        assert approximate_majority.delta(B, A) == (B, UNDECIDED)

    def test_decided_recruits_undecided(self, approximate_majority):
        assert approximate_majority.delta(A, UNDECIDED) == (A, A)
        assert approximate_majority.delta(B, UNDECIDED) == (B, B)

    def test_same_opinion_silent(self, approximate_majority):
        assert approximate_majority.delta(A, A) == (A, A)
        assert approximate_majority.delta(B, B) == (B, B)

    def test_undecided_starter_silent(self, approximate_majority):
        assert approximate_majority.delta(UNDECIDED, A) == (UNDECIDED, A)

    def test_output(self, approximate_majority):
        assert approximate_majority.output(A) == A
        assert approximate_majority.output(UNDECIDED) is None

    def test_consensus_helpers(self, approximate_majority):
        full_a = ApproximateMajorityProtocol.initial_configuration(3, 0)
        assert ApproximateMajorityProtocol.is_consensus(full_a)
        assert ApproximateMajorityProtocol.consensus_value(full_a) == A
        mixed = ApproximateMajorityProtocol.initial_configuration(2, 2)
        assert not ApproximateMajorityProtocol.is_consensus(mixed)
        assert ApproximateMajorityProtocol.consensus_value(mixed) is None


class TestExactMajority:
    def test_strong_opinions_cancel(self, exact_majority):
        assert exact_majority.delta(A, B) == (WEAK_A, WEAK_B)
        assert exact_majority.delta(B, A) == (WEAK_B, WEAK_A)

    def test_strong_converts_opposite_weak(self, exact_majority):
        assert exact_majority.delta(A, WEAK_B) == (A, WEAK_A)
        assert exact_majority.delta(B, WEAK_A) == (B, WEAK_B)
        assert exact_majority.delta(WEAK_B, A) == (WEAK_A, A)
        assert exact_majority.delta(WEAK_A, B) == (WEAK_B, B)

    def test_weak_weak_is_silent(self, exact_majority):
        assert exact_majority.delta(WEAK_A, WEAK_B) == (WEAK_A, WEAK_B)
        assert exact_majority.delta(WEAK_B, WEAK_A) == (WEAK_B, WEAK_A)

    def test_strong_count_invariant(self, exact_majority):
        """The difference (#strong A - #strong B) is invariant under every rule."""
        def balance(states):
            return sum(1 for s in states if s == A) - sum(1 for s in states if s == B)

        for starter in exact_majority.states:
            for reactor in exact_majority.states:
                before = balance([starter, reactor])
                after = balance(exact_majority.delta(starter, reactor))
                assert before == after

    def test_output(self, exact_majority):
        assert exact_majority.output(A) == A
        assert exact_majority.output(WEAK_A) == A
        assert exact_majority.output(B) == B
        assert exact_majority.output(WEAK_B) == B

    def test_majority_opinion(self, exact_majority):
        assert exact_majority.majority_opinion(3, 2) == A
        assert exact_majority.majority_opinion(2, 3) == B
        assert exact_majority.majority_opinion(2, 2) is None

    def test_initial_configuration(self, exact_majority):
        config = exact_majority.initial_configuration(3, 2)
        assert config.count(A) == 3
        assert config.count(B) == 2

    def test_has_converged_to(self, exact_majority):
        from repro.protocols.state import Configuration

        assert exact_majority.has_converged_to(Configuration([A, WEAK_A]), A)
        assert not exact_majority.has_converged_to(Configuration([A, WEAK_B]), A)
