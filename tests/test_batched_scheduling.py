"""Batched scheduler draws and the registry-backed process fan-out.

Two contracts are pinned here:

* **Batched = per-step, bitwise.**  For every scheduler class, drawing
  through :meth:`Scheduler.next_interactions` (in any chunking) yields
  exactly the interactions that per-step :meth:`Scheduler.next_interaction`
  calls would, for the same seed — including omission flags and RNG
  consumption.  This is what lets the engine consume draws in chunks
  without changing any seeded experiment.

* **Process backend = thread backend = sequential.**  A registry-described
  experiment merges to an identical :class:`ExperimentResult` under all
  three execution modes.
"""

import pickle

import pytest

from repro.adversary.omission import UOAdversary
from repro.core.trivial import TrivialTwoWaySimulator
from repro.engine.convergence import run_until_stable
from repro.engine.engine import SimulationEngine
from repro.engine.experiment import repeat_experiment, run_spec
from repro.interaction.models import TW, get_model
from repro.interaction.omissions import REACTOR_OMISSION, STARTER_OMISSION
from repro.protocols.catalog.epidemic import (
    INFORMED,
    SUSCEPTIBLE,
    EpidemicProtocol,
    OneWayEpidemicProtocol,
)
from repro.protocols.catalog.leader_election import LEADER, LeaderElectionProtocol
from repro.protocols.registry import ExperimentSpec, build_cached
from repro.protocols.state import Configuration
from repro.scheduling.graph_scheduler import (
    complete_graph_scheduler,
    random_graph_scheduler,
    ring_scheduler,
    star_scheduler,
)
from repro.scheduling.runs import Interaction, Run
from repro.scheduling.scheduler import (
    RandomScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
    WeightedPairScheduler,
)


def scheduler_factories():
    """(name, factory) pairs covering every scheduler class, fresh per call."""
    omissive_run = Run([
        Interaction(0, 1),
        Interaction(1, 2, omission=STARTER_OMISSION),
        Interaction(2, 0),
        Interaction(0, 2, omission=REACTOR_OMISSION),
        Interaction(1, 0),
    ])
    return [
        ("random-n2", lambda: RandomScheduler(2, seed=11)),
        ("random-n3", lambda: RandomScheduler(3, seed=5)),
        ("random-n7", lambda: RandomScheduler(7, seed=123)),
        ("random-n100", lambda: RandomScheduler(100, seed=9)),
        ("weighted", lambda: WeightedPairScheduler(
            4, weights={(0, 1): 3.0, (1, 2): 1.0, (3, 0): 0.5}, seed=21)),
        ("round-robin", lambda: RoundRobinScheduler(4)),
        ("scripted", lambda: ScriptedScheduler(omissive_run)),
        ("scripted+continuation", lambda: ScriptedScheduler(
            omissive_run, continuation=RoundRobinScheduler(3))),
        ("graph-ring", lambda: ring_scheduler(6, seed=3)),
        ("graph-star", lambda: star_scheduler(5, seed=4)),
        ("graph-complete", lambda: complete_graph_scheduler(5, seed=7)),
        ("graph-random", lambda: random_graph_scheduler(6, 0.6, seed=2)),
    ]


def draw_per_step(scheduler, count):
    out = []
    for step in range(count):
        try:
            out.append(scheduler.next_interaction(step))
        except Exception:
            break
    return out


def draw_chunked(scheduler, count, chunk):
    out = []
    step = 0
    while step < count:
        k = min(chunk, count - step)
        batch = scheduler.next_interactions(step, k)
        out.extend(batch)
        step += len(batch)
        if len(batch) < k:
            break
    return out


class TestBatchedEqualsPerStep:
    @pytest.mark.parametrize("name,factory",
                             scheduler_factories(), ids=lambda x: x if isinstance(x, str) else "")
    @pytest.mark.parametrize("chunk", [1, 2, 3, 7, 64])
    def test_bitwise_identical_streams(self, name, factory, chunk):
        reference = draw_per_step(factory(), 200)
        batched = draw_chunked(factory(), 200, chunk)
        assert batched == reference
        # omission flags survive batching untouched
        assert [i.omission for i in batched] == [i.omission for i in reference]

    @pytest.mark.parametrize("name,factory",
                             scheduler_factories(), ids=lambda x: x if isinstance(x, str) else "")
    def test_interleaved_consumption(self, name, factory):
        """Mixing per-step and batched draws consumes one shared stream."""
        reference = draw_per_step(factory(), 60)

        scheduler = factory()
        mixed = []
        step = 0
        plan = [("step", 3), ("batch", 10), ("step", 5), ("batch", 1), ("batch", 41)]
        for kind, amount in plan:
            if kind == "step":
                got = draw_per_step_from(scheduler, step, amount)
            else:
                got = scheduler.next_interactions(step, amount)
            mixed.extend(got)
            step += len(got)
            if len(got) < amount:
                break
        assert mixed == reference[:len(mixed)]
        assert len(mixed) == len(reference)

    def test_zero_or_negative_k_is_a_noop(self):
        scheduler = RandomScheduler(5, seed=0)
        assert scheduler.next_interactions(0, 0) == []
        assert scheduler.next_interactions(0, -3) == []
        # the RNG stream was not consumed
        assert scheduler.next_interaction(0) == RandomScheduler(5, seed=0).next_interaction(0)

    def test_reset_restores_batched_stream(self):
        scheduler = RandomScheduler(6, seed=13)
        first = scheduler.next_interactions(0, 50)
        scheduler.reset()
        assert scheduler.next_interactions(0, 50) == first


def draw_per_step_from(scheduler, start, count):
    out = []
    for offset in range(count):
        try:
            out.append(scheduler.next_interaction(start + offset))
        except Exception:
            break
    return out


class TestBatchedExhaustion:
    def test_short_batch_signals_exhaustion(self):
        scheduler = ScriptedScheduler(Run.from_pairs([(0, 1), (1, 2), (2, 0)]))
        batch = scheduler.next_interactions(0, 10)
        assert [i.pair for i in batch] == [(0, 1), (1, 2), (2, 0)]

    def test_exhaustion_is_terminal_and_empty(self):
        scheduler = ScriptedScheduler(Run.from_pairs([(0, 1)]))
        assert len(scheduler.next_interactions(0, 5)) == 1
        assert scheduler.next_interactions(1, 5) == []
        assert scheduler.next_interactions(1, 5) == []

    def test_batch_crossing_continuation_boundary(self):
        scheduler = ScriptedScheduler(
            Run.from_pairs([(0, 1), (1, 2)]), continuation=RoundRobinScheduler(3))
        batch = scheduler.next_interactions(0, 5)
        assert [i.pair for i in batch] == [(0, 1), (1, 2), (0, 1), (0, 2), (1, 0)]


class TestEngineChunkIndependence:
    """The executed run is independent of the chunk size (including traces)."""

    def _engine(self, seed=3):
        program = TrivialTwoWaySimulator(EpidemicProtocol())
        return SimulationEngine(program, TW, RandomScheduler(30, seed=seed))

    def _initial(self):
        return Configuration([INFORMED] + [SUSCEPTIBLE] * 29)

    @pytest.mark.parametrize("chunk_size", [1, 2, 17, 256, 10_000])
    def test_full_trace_identical_across_chunk_sizes(self, chunk_size):
        reference = self._engine().execute(self._initial(), 500, trace_policy="full")
        result = self._engine().execute(
            self._initial(), 500, trace_policy="full", chunk_size=chunk_size)
        assert result.steps == reference.steps
        assert result.final_configuration == reference.final_configuration
        assert list(result.trace) == list(reference.trace)

    @pytest.mark.parametrize("chunk_size", [1, 7, 256])
    def test_stop_condition_identical_across_chunk_sizes(self, chunk_size):
        stop = lambda c: c.count(INFORMED) >= 10  # noqa: E731
        reference = self._engine().execute(
            self._initial(), 5_000, stop_condition=stop, trace_policy="counts-only",
            chunk_size=1)
        result = self._engine().execute(
            self._initial(), 5_000, stop_condition=stop, trace_policy="counts-only",
            chunk_size=chunk_size)
        assert result.steps == reference.steps
        assert result.stopped == reference.stopped
        assert result.final_configuration == reference.final_configuration

    def test_adversary_runs_unaffected_by_chunk_size(self):
        model = get_model("I3")

        def build():
            return SimulationEngine(
                OneWayEpidemicProtocol(), model, RandomScheduler(10, seed=5),
                adversary=UOAdversary(model, rate=0.5, max_per_gap=3, seed=5))

        initial = Configuration([INFORMED] + [SUSCEPTIBLE] * 9)
        reference = build().execute(initial, 300, trace_policy="full", chunk_size=1)
        result = build().execute(initial, 300, trace_policy="full", chunk_size=64)
        assert result.steps == reference.steps
        assert result.omissions == reference.omissions
        assert list(result.trace) == list(reference.trace)

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            self._engine().execute(self._initial(), 10, chunk_size=0)

    def test_convergence_identical_for_scripted_exhaustion(self):
        """SchedulerExhausted semantics survive batching inside run_until_stable."""
        run = Run.from_pairs([(0, 1), (1, 2), (2, 0), (0, 2)])

        def outcome():
            engine = SimulationEngine(
                TrivialTwoWaySimulator(LeaderElectionProtocol()), TW,
                ScriptedScheduler(run))
            return run_until_stable(
                engine, Configuration([LEADER] * 3),
                predicate=lambda c: False,  # never converges: must drain the script
                max_steps=1_000)

        first, second = outcome(), outcome()
        assert first.steps_executed == len(run)
        assert first.steps_executed == second.steps_executed
        assert first.final_configuration == second.final_configuration


class TestExperimentSpec:
    def test_spec_is_picklable_and_hashable(self):
        spec = ExperimentSpec(
            protocol="threshold", population=9,
            protocol_kwargs={"threshold": 4}, ones=5)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert hash(clone) == hash(spec)
        assert spec.protocol_kwargs == (("threshold", 4),)

    def test_unknown_keys_fail_at_build(self):
        with pytest.raises(KeyError, match="unknown protocol"):
            ExperimentSpec(protocol="nope", population=4).build()
        with pytest.raises(KeyError, match="unknown predicate"):
            ExperimentSpec(
                protocol="epidemic", population=4, predicate="nope").build()
        with pytest.raises(KeyError, match="unknown scheduler"):
            ExperimentSpec(
                protocol="epidemic", population=4, scheduler="nope").build()
        with pytest.raises(KeyError, match="unknown simulator"):
            ExperimentSpec(
                protocol="epidemic", population=4, simulator="nope").build()

    def test_omissions_require_an_omissive_model(self):
        with pytest.raises(ValueError, match="does not admit omissions"):
            ExperimentSpec(
                protocol="exact-majority", population=4, omissions=1).build()

    def test_build_cache_returns_same_object(self):
        spec = ExperimentSpec(protocol="epidemic", population=5)
        assert build_cached(spec) is build_cached(spec)

    def test_run_spec_is_deterministic(self):
        spec = ExperimentSpec(protocol="leader-election", population=6)
        first = run_spec(spec, 0, 42, 20_000, 0, "counts-only")
        second = run_spec(spec, 0, 42, 20_000, 0, "counts-only")
        assert first.converged and second.converged
        assert first.steps_to_convergence == second.steps_to_convergence
        assert first.final_configuration == second.final_configuration


class TestProcessBackend:
    SPEC = ExperimentSpec(protocol="exact-majority", population=8)

    def _run(self, **kwargs):
        return repeat_experiment(
            spec=self.SPEC, runs=6, max_steps=20_000, base_seed=42, **kwargs)

    def test_process_merge_identical_to_thread_and_sequential(self):
        sequential = self._run()
        threaded = self._run(jobs=3)
        processed = self._run(jobs=2, jobs_backend="process")
        for other in (threaded, processed):
            assert other.runs == sequential.runs
            assert other.successes == sequential.successes
            assert other.convergence_steps == sequential.convergence_steps
            assert other.failures == sequential.failures

    def test_process_backend_with_adversary_spec(self):
        spec = ExperimentSpec(
            protocol="exact-majority", population=8, model="I3",
            simulator="skno", omission_bound=1, omissions=1)
        sequential = repeat_experiment(
            spec=spec, runs=4, max_steps=60_000, base_seed=7)
        processed = repeat_experiment(
            spec=spec, runs=4, max_steps=60_000, base_seed=7,
            jobs=2, jobs_backend="process")
        assert processed.convergence_steps == sequential.convergence_steps
        assert processed.failures == sequential.failures

    def test_process_backend_requires_a_spec(self):
        protocol = EpidemicProtocol()
        with pytest.raises(ValueError, match="ExperimentSpec"):
            repeat_experiment(
                TrivialTwoWaySimulator(protocol), TW,
                Configuration([INFORMED, SUSCEPTIBLE]),
                predicate=lambda c: True,
                runs=2, jobs=2, jobs_backend="process")

    def test_spec_excludes_live_objects(self):
        with pytest.raises(ValueError, match="do not also pass"):
            repeat_experiment(
                program=TrivialTwoWaySimulator(EpidemicProtocol()),
                spec=self.SPEC, runs=2)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="jobs_backend"):
            self._run(jobs=2, jobs_backend="fibers")

    @pytest.mark.parametrize("backend_kwargs", [
        {}, {"jobs": 2}, {"jobs": 2, "jobs_backend": "process"}])
    def test_ring_size_and_failure_dumps(self, backend_kwargs):
        """ring_size reaches the workers; failing runs surface their windows."""
        spec = ExperimentSpec(protocol="leader-election", population=6)
        result = repeat_experiment(
            spec=spec, runs=3, max_steps=30, stability_window=300,
            base_seed=0, trace_policy="ring", ring_size=4, **backend_kwargs)
        assert result.successes == 0
        assert len(result.failure_dumps) == 3
        assert [index for index, _steps in result.failure_dumps] == [0, 1, 2]
        assert all(len(steps) == 4 for _index, steps in result.failure_dumps)

    @pytest.mark.parametrize("backend_kwargs", [
        {"jobs": 3, "run_chunk": 2},
        {"jobs": 2, "run_chunk": 3, "jobs_backend": "process"},
        {"jobs": 2, "run_chunk": 100, "jobs_backend": "process"},  # > runs
    ])
    def test_run_chunking_merges_identically(self, backend_kwargs):
        """Shipping seeds in batches per executor task changes nothing."""
        reference = self._run()
        result = self._run(**backend_kwargs)
        assert result.runs == reference.runs
        assert result.successes == reference.successes
        assert result.convergence_steps == reference.convergence_steps
        assert result.failures == reference.failures

    def test_run_chunking_keeps_failure_dump_order(self):
        spec = ExperimentSpec(protocol="leader-election", population=6)
        result = repeat_experiment(
            spec=spec, runs=5, max_steps=30, stability_window=300,
            base_seed=0, trace_policy="ring", ring_size=4,
            jobs=2, jobs_backend="process", run_chunk=2)
        assert result.successes == 0
        assert [index for index, _steps in result.failure_dumps] == [0, 1, 2]

    def test_invalid_run_chunk_rejected(self):
        with pytest.raises(ValueError, match="run_chunk"):
            self._run(run_chunk=0)

    @pytest.mark.parametrize("chunk_size", [1, 7, 1024])
    def test_spec_chunk_size_changes_no_result(self, chunk_size):
        reference = self._run()
        spec = ExperimentSpec(
            protocol="exact-majority", population=8, chunk_size=chunk_size)
        result = repeat_experiment(
            spec=spec, runs=6, max_steps=20_000, base_seed=42,
            jobs=2, jobs_backend="process")
        assert result.successes == reference.successes
        assert result.convergence_steps == reference.convergence_steps

    def test_invalid_spec_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ExperimentSpec(protocol="epidemic", population=4, chunk_size=0)

    def test_seeded_final_configurations_identical_across_backends(self):
        """Acceptance pin: per-step draws, batched draws and the process
        backend all land on the same final configuration for a fixed seed."""
        spec = ExperimentSpec(protocol="leader-election", population=6)

        # batched (the default engine path), via the worker function
        batched = run_spec(spec, 0, 42, 20_000, 0, "counts-only")

        # per-step draws: identical system, chunk_size=1
        built = spec.build()
        engine = SimulationEngine(
            built.program, built.model, built.make_scheduler(42))
        per_step = engine.execute(
            built.initial_configuration, batched.steps_executed,
            trace_policy="counts-only", chunk_size=1)

        # process backend, single run
        processed = repeat_experiment(
            spec=spec, runs=2, max_steps=20_000, base_seed=42,
            jobs=2, jobs_backend="process")

        assert per_step.final_configuration == batched.final_configuration
        assert processed.convergence_steps[0] == batched.steps_to_convergence
