"""Integration tests: every catalog protocol stabilises correctly under plain TW.

These runs establish the ground truth that the simulators are compared
against, and exercise the engine + convergence machinery on all workloads.
"""

import pytest

from repro.core.trivial import TrivialTwoWaySimulator
from repro.engine.convergence import run_until_stable
from repro.engine.engine import SimulationEngine
from repro.interaction.models import TW
from repro.problems.leader_election import LeaderElectionProblem
from repro.problems.majority import MajorityProblem
from repro.problems.pairing import PairingProblem
from repro.problems.threshold import ThresholdProblem
from repro.protocols.catalog.averaging import AveragingProtocol
from repro.protocols.catalog.counting import ModuloCountingProtocol, ThresholdProtocol
from repro.protocols.catalog.epidemic import EpidemicProtocol
from repro.protocols.catalog.leader_election import LeaderElectionProtocol
from repro.protocols.catalog.majority import ApproximateMajorityProtocol, ExactMajorityProtocol
from repro.protocols.catalog.pairing import PairingProtocol
from repro.protocols.catalog.predicates import AndProtocol, OrProtocol, ParityProtocol
from repro.protocols.state import Configuration
from repro.scheduling.scheduler import RandomScheduler

MAX_STEPS = 60_000
WINDOW = 200


def converge(protocol, initial, predicate, seed=0):
    program = TrivialTwoWaySimulator(protocol)
    engine = SimulationEngine(program, TW, RandomScheduler(len(initial), seed=seed))
    return run_until_stable(engine, initial, predicate, max_steps=MAX_STEPS,
                            stability_window=WINDOW)


class TestCatalogUnderTW:
    def test_pairing(self):
        problem = PairingProblem(consumers=4, producers=6)
        result = converge(PairingProtocol(), problem.initial_configuration(),
                          problem.is_live, seed=1)
        assert result.converged
        assert problem.check(result.trace.configurations()).ok

    def test_leader_election(self):
        problem = LeaderElectionProblem(8)
        result = converge(LeaderElectionProtocol(), problem.initial_configuration(),
                          problem.is_live, seed=2)
        assert result.converged
        assert problem.check(result.trace.configurations()).ok

    def test_exact_majority(self):
        problem = MajorityProblem(6, 4)
        result = converge(problem.protocol, problem.initial_configuration(),
                          problem.is_live, seed=3)
        assert result.converged
        assert problem.check(result.trace.configurations()).ok

    def test_approximate_majority_reaches_consensus(self):
        protocol = ApproximateMajorityProtocol()
        initial = protocol.initial_configuration(7, 2)
        result = converge(protocol, initial, protocol.is_consensus, seed=4)
        assert result.converged
        assert protocol.consensus_value(result.final_configuration) == "A"

    @pytest.mark.parametrize("ones,expected", [(4, True), (2, False)])
    def test_threshold(self, ones, expected):
        protocol = ThresholdProtocol(threshold=3)
        problem = ThresholdProblem(ones=ones, zeros=4, threshold=3, protocol=protocol)
        result = converge(protocol, problem.initial_configuration(), problem.is_live,
                          seed=5 + ones)
        assert result.converged
        assert problem.check(result.trace.configurations()).ok

    @pytest.mark.parametrize("ones,zeros", [(3, 3), (4, 2)])
    def test_modulo_counting(self, ones, zeros):
        protocol = ModuloCountingProtocol(modulus=3, target=0)
        expected = protocol.expected_output(ones)
        initial = protocol.initial_configuration(ones, zeros)
        predicate = lambda c: all(protocol.output(s) == expected for s in c)
        result = converge(protocol, initial, predicate, seed=6 + ones)
        assert result.converged

    @pytest.mark.parametrize("ones,zeros", [(3, 4), (2, 4)])
    def test_parity(self, ones, zeros):
        protocol = ParityProtocol()
        expected = protocol.expected_output(ones)
        initial = protocol.initial_configuration(ones, zeros)
        predicate = lambda c: all(protocol.output(s) == expected for s in c)
        result = converge(protocol, initial, predicate, seed=7 + ones)
        assert result.converged

    def test_or_and(self):
        or_protocol = OrProtocol()
        result = converge(or_protocol, or_protocol.initial_configuration(1, 6),
                          lambda c: all(s == 1 for s in c), seed=8)
        assert result.converged

        and_protocol = AndProtocol()
        result = converge(and_protocol, and_protocol.initial_configuration(5, 1),
                          lambda c: all(s == 0 for s in c), seed=9)
        assert result.converged

    def test_averaging_balances(self):
        protocol = AveragingProtocol(max_value=8)
        initial = Configuration([8, 0, 4, 2, 6, 0])
        result = converge(protocol, initial, AveragingProtocol.is_balanced, seed=10)
        assert result.converged
        assert AveragingProtocol.total(result.final_configuration) == 20

    def test_epidemic_informs_everyone(self):
        protocol = EpidemicProtocol()
        initial = EpidemicProtocol.initial_configuration(1, 7)
        result = converge(protocol, initial, EpidemicProtocol.all_informed, seed=11)
        assert result.converged
