"""Campaign subsystem tests: spec parsing, planning, the store, and the
resume-determinism acceptance property (interrupt after any prefix of
cells, resume, and the final store + rendered report are identical to an
uninterrupted run — across fan-out backends and engine backends)."""

from __future__ import annotations

import json
import os

import pytest

from repro.campaign.planner import infeasible_reason, plan_campaign
from repro.campaign.report import render_report
from repro.campaign.runner import campaign_status, run_campaign
from repro.campaign.spec import (
    CampaignError,
    campaign_from_dict,
    campaign_from_file,
)
from repro.campaign.store import ResultStore, StoreError
from repro.cli import main
from repro.engine.experiment import ExperimentResult
from repro.protocols.registry import ADVERSARIES, ExperimentSpec
from repro.adversary.omission import (
    BoundedOmissionAdversary,
    NO1Adversary,
    NOAdversary,
    UOAdversary,
)

EXAMPLE_SPEC = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples", "figure4_omission_sweep.json")


def small_campaign(backend: str = "python") -> dict:
    """A fast four-cell campaign used by the determinism tests."""
    return {
        "name": "small-grid",
        "base": {"protocol": "epidemic", "backend": backend},
        "axes": {
            "scheduler": ["random", "round-robin"],
            "population": [4, 6],
        },
        "runs": 2,
        "base_seed": 3,
        "max_steps": 20_000,
        "stability_window": 8,
    }


def fresh_store(tmp_path, plan, name="store.jsonl"):
    return ResultStore.create(str(tmp_path / name), plan.campaign.name,
                              plan.campaign_hash)


# ---------------------------------------------------------------------------
# spec parsing
# ---------------------------------------------------------------------------


class TestCampaignSpec:
    def test_scalar_and_dict_axis_points(self):
        campaign = campaign_from_dict(small_campaign())
        assert campaign.axis_names == ["scheduler", "population"]
        scheduler_points = dict(campaign.axes)["scheduler"]
        assert [point.label for point in scheduler_points] == ["random", "round-robin"]
        assert scheduler_points[0].as_dict() == {"scheduler": "random"}

    def test_dict_points_carry_labels_and_overrides(self):
        campaign = campaign_from_dict({
            "name": "x",
            "axes": {"assumption": [
                {"label": "skno", "simulator": "skno", "model": "I3"},
                {"simulator": "sid", "model": "IO"},
            ]},
            "base": {"protocol": "pairing", "population": 4},
        })
        points = dict(campaign.axes)["assumption"]
        assert points[0].label == "skno"
        assert points[0].as_dict() == {"simulator": "skno", "model": "I3"}
        # Unlabelled dict points get a deterministic derived label.
        assert points[1].label == "model=IO,simulator=sid"

    @pytest.mark.parametrize("mutate, message", [
        (lambda d: d.pop("name"), "name"),
        (lambda d: d.update(axes={}), "axes"),
        (lambda d: d.update(runs=0), "runs"),
        (lambda d: d.update(unknown_key=1), "unknown campaign key"),
        (lambda d: d["axes"].update(bogus_field=[1, 2]), "unknown experiment field"),
        (lambda d: d["axes"].update(scheduler=["random", "random"]), "duplicate"),
        (lambda d: d.update(report={"rows": "not-an-axis"}), "not an axis"),
        (lambda d: d["base"].update(no_such_field=1), "unknown experiment field"),
    ])
    def test_malformed_specs_are_rejected(self, mutate, message):
        data = small_campaign()
        mutate(data)
        with pytest.raises(CampaignError, match=message):
            campaign_from_dict(data)

    def test_from_file_errors(self, tmp_path):
        with pytest.raises(CampaignError, match="cannot read"):
            campaign_from_file(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(CampaignError, match="not valid JSON"):
            campaign_from_file(str(bad))

    def test_report_axes_default_to_first_two(self):
        campaign = campaign_from_dict(small_campaign())
        assert campaign.report_axes() == ("scheduler", "population")

    def test_priority_parses_and_defaults_to_zero(self):
        assert campaign_from_dict(small_campaign()).priority == 0
        prioritised = small_campaign()
        prioritised["priority"] = 3
        assert campaign_from_dict(prioritised).priority == 3
        prioritised["priority"] = "high"
        with pytest.raises(CampaignError, match="'priority'"):
            campaign_from_dict(prioritised)

    def test_priority_is_scheduling_metadata_not_identity(self):
        # Re-prioritising a campaign must never re-run cells: neither the
        # grid fingerprint nor any cell id may depend on `priority`.
        baseline = plan_campaign(campaign_from_dict(small_campaign()))
        prioritised_data = small_campaign()
        prioritised_data["priority"] = 9
        prioritised = plan_campaign(campaign_from_dict(prioritised_data))
        assert prioritised.campaign_hash == baseline.campaign_hash
        assert prioritised.cell_ids() == baseline.cell_ids()

    def test_partial_report_section_never_collapses_two_axes(self):
        # Setting only rows (or only cols) to an axis the other side would
        # default to must not produce a rows == cols one-dimensional grid.
        rows_only = small_campaign()
        rows_only["report"] = {"rows": "population"}
        assert campaign_from_dict(rows_only).report_axes() == (
            "population", "scheduler")
        cols_only = small_campaign()
        cols_only["report"] = {"cols": "scheduler"}
        assert campaign_from_dict(cols_only).report_axes() == (
            "population", "scheduler")


# ---------------------------------------------------------------------------
# planning
# ---------------------------------------------------------------------------


class TestPlanner:
    def test_grid_expansion_order_and_coordinates(self):
        plan = plan_campaign(campaign_from_dict(small_campaign()))
        assert plan.total == 4
        assert [cell.labels for cell in plan.cells] == [
            {"scheduler": "random", "population": "4"},
            {"scheduler": "random", "population": "6"},
            {"scheduler": "round-robin", "population": "4"},
            {"scheduler": "round-robin", "population": "6"},
        ]
        assert [cell.index for cell in plan.cells] == [0, 1, 2, 3]

    def test_cell_ids_are_content_addressed(self):
        base = plan_campaign(campaign_from_dict(small_campaign()))
        # Renaming an axis label changes coordinates but not content.
        relabelled_data = small_campaign()
        relabelled_data["axes"]["scheduler"] = [
            {"label": "uniform", "scheduler": "random"},
            {"label": "rr", "scheduler": "round-robin"},
        ]
        relabelled = plan_campaign(campaign_from_dict(relabelled_data))
        assert [c.cell_id for c in relabelled.cells] == [c.cell_id for c in base.cells]
        # Changing the seed block re-addresses every cell.
        reseeded_data = small_campaign()
        reseeded_data["runs"] = 3
        reseeded = plan_campaign(campaign_from_dict(reseeded_data))
        assert not set(c.cell_id for c in reseeded.cells) & set(
            c.cell_id for c in base.cells)

    def test_campaign_hash_tracks_the_grid(self):
        base = plan_campaign(campaign_from_dict(small_campaign()))
        changed_data = small_campaign()
        changed_data["axes"]["population"] = [4, 8]
        changed = plan_campaign(campaign_from_dict(changed_data))
        assert base.campaign_hash != changed.campaign_hash

    def test_axis_reorder_keeps_the_store_valid(self):
        base = plan_campaign(campaign_from_dict(small_campaign()))
        reordered_data = small_campaign()
        reordered_data["axes"] = {
            "population": [4, 6],
            "scheduler": ["random", "round-robin"],
        }
        reordered = plan_campaign(campaign_from_dict(reordered_data))
        # Same cells, different walk order: the grid fingerprint must match
        # so finished results stay resumable after an axis reorder.
        assert {c.cell_id for c in reordered.cells} == {c.cell_id for c in base.cells}
        assert reordered.campaign_hash == base.campaign_hash

    def test_spelling_out_a_default_is_a_hashing_noop(self):
        base = plan_campaign(campaign_from_dict(small_campaign()))
        explicit_data = small_campaign()
        explicit_data["base"].update(model="TW", simulator="none",
                                     adversary="bounded", omissions=0)
        explicit = plan_campaign(campaign_from_dict(explicit_data))
        assert [c.cell_id for c in explicit.cells] == [c.cell_id for c in base.cells]
        assert explicit.campaign_hash == base.campaign_hash

    def test_duplicate_cells_are_rejected(self):
        data = small_campaign()
        data["axes"]["scheduler"] = [
            {"label": "a", "scheduler": "random"},
            {"label": "b", "scheduler": "random"},
        ]
        with pytest.raises(CampaignError, match="same experiment"):
            plan_campaign(campaign_from_dict(data))

    def test_invalid_cell_spec_fails_at_plan_time(self):
        data = small_campaign()
        data["axes"]["population"] = [4, 1]  # population 1 cannot interact
        with pytest.raises(CampaignError, match="invalid experiment spec"):
            plan_campaign(campaign_from_dict(data))

    def test_unknown_registry_keys_fail_at_plan_time(self):
        for field_name, bad in [("protocol", "no-such-protocol"),
                                ("scheduler", "no-such-scheduler"),
                                ("simulator", "no-such-simulator"),
                                ("predicate", "no-such-predicate"),
                                ("adversary", "no-such-adversary")]:
            data = {
                "name": "bad-key",
                "base": {"protocol": "epidemic", field_name: bad},
                "axes": {"population": [4, 6]},
                "runs": 1,
            }
            with pytest.raises(CampaignError, match=f"unknown {field_name}"):
                plan_campaign(campaign_from_dict(data))

    def test_unknown_model_fails_at_plan_time(self):
        data = small_campaign()
        data["base"]["model"] = "I9"
        with pytest.raises(CampaignError, match="unknown model"):
            plan_campaign(campaign_from_dict(data))

    def test_infeasible_reasons(self):
        assert infeasible_reason(
            {"simulator": "known-n", "scheduler": "ring-graph"}) is not None
        assert infeasible_reason(
            {"model": "IO", "omissions": 1}) is not None
        assert infeasible_reason(
            {"model": "I3", "omissions": 1, "simulator": "skno"}) is None
        assert infeasible_reason(
            {"simulator": "known-n", "scheduler": "random"}) is None

    def test_example_campaign_plans_with_documented_na_cells(self):
        plan = plan_campaign(campaign_from_file(EXAMPLE_SPEC))
        assert plan.total == 12
        na = {cell.labels["assumption"] + "/" + cell.labels["topology"]
              + "/" + cell.labels["omissions"]: cell.skip_reason
              for cell in plan.cells if cell.skip_reason}
        # The documented knowledge-of-n ring cells are n/a ...
        for budget in ("0", "1", "2"):
            assert "deadlocks" in na[f"knowledge-of-n/ring/{budget}"]
        # ... and so are omission budgets on the non-omissive IO model.
        for budget in ("1", "2"):
            assert "does not admit omissions" in na[f"knowledge-of-n/complete/{budget}"]
        assert len(na) == 5
        feasible = [cell for cell in plan.cells if cell.skip_reason is None]
        assert len(feasible) == 7


# ---------------------------------------------------------------------------
# the result store
# ---------------------------------------------------------------------------


class TestResultStore:
    def test_create_then_open_round_trips_records(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        store = ResultStore.create(path, "c", "hash1")
        record = {"kind": "cell", "cell_id": "abc", "status": "ok",
                  "result": {"runs": 1, "successes": 1}}
        store.append_cell(record)
        reopened = ResultStore.open(path, "c", "hash1")
        assert reopened.completed_ids() == {"abc"}
        assert reopened.record_for("abc") == record

    def test_create_refuses_an_existing_file(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        ResultStore.create(path, "c", "hash1")
        with pytest.raises(FileExistsError):
            ResultStore.create(path, "c", "hash1")

    def test_open_missing_store_errors(self, tmp_path):
        with pytest.raises(StoreError, match="no result store"):
            ResultStore.open(str(tmp_path / "nope.jsonl"), "c", "hash1")

    def test_grid_hash_mismatch_is_loud(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        ResultStore.create(path, "c", "hash1")
        with pytest.raises(StoreError, match="spec changed"):
            ResultStore.open(path, "c", "hash2")

    def test_cell_records_are_ordered_by_id_not_append_order(self, tmp_path):
        # Parallel executors append in completion order; every fold keys
        # off cell id, so the store normalises iteration order itself.
        path = str(tmp_path / "s.jsonl")
        store = ResultStore.create(path, "c", "hash1")
        for cell_id in ("zz", "aa", "mm"):
            store.append_cell({"kind": "cell", "cell_id": cell_id,
                               "status": "na"})
        assert list(store.cell_records) == ["aa", "mm", "zz"]
        reopened = ResultStore.open(path, "c", "hash1")
        assert list(reopened.cell_records) == ["aa", "mm", "zz"]

    def test_torn_tail_is_recovered(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        store = ResultStore.create(path, "c", "hash1")
        store.append_cell({"kind": "cell", "cell_id": "good", "status": "na"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "cell", "cell_id": "torn", "stat')  # cut mid-write
        reopened = ResultStore.open(path, "c", "hash1")
        assert reopened.completed_ids() == {"good"}
        # Recovery truncates, so the next append starts on a clean boundary.
        reopened.append_cell({"kind": "cell", "cell_id": "next", "status": "na"})
        assert ResultStore.open(path, "c", "hash1").completed_ids() == {"good", "next"}

    def test_complete_json_without_newline_is_torn(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        store = ResultStore.create(path, "c", "hash1")
        store.append_cell({"kind": "cell", "cell_id": "good", "status": "na"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"kind": "cell", "cell_id": "cut", "status": "na"}))
        assert ResultStore.open(path, "c", "hash1").completed_ids() == {"good"}

    def test_torn_manifest_is_reinitialised(self, tmp_path):
        # A crash during create() can tear the manifest line itself; nothing
        # was persisted yet, so open() re-initialises the store in place.
        path = str(tmp_path / "s.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"campaign": "c", "campaign_hash": "hash1", "ki')
        store = ResultStore.open(path, "c", "hash1")
        assert store.completed_ids() == set()
        store.append_cell({"kind": "cell", "cell_id": "a", "status": "na"})
        assert ResultStore.open(path, "c", "hash1").completed_ids() == {"a"}

    def test_empty_file_is_reinitialised(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        open(path, "w").close()
        assert ResultStore.open_or_create(path, "c", "hash1").completed_ids() == set()

    def test_foreign_file_is_not_overwritten(self, tmp_path):
        path = str(tmp_path / "notes.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("my precious notes, no trailing newline")
        with pytest.raises(StoreError, match="no campaign manifest"):
            ResultStore.open(path, "c", "hash1")
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == "my precious notes, no trailing newline"

    def test_readonly_open_does_not_mutate_the_file(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        store = ResultStore.create(path, "c", "hash1")
        store.append_cell({"kind": "cell", "cell_id": "good", "status": "na"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "cell", "torn')
        before = open(path, "rb").read()
        # status/report open read-only: the torn tail is tolerated but the
        # file is left byte-identical.
        readonly = ResultStore.open(path, "c", "hash1", recover=False)
        assert readonly.completed_ids() == {"good"}
        assert open(path, "rb").read() == before
        # An empty file is not claimed by a read-only open either.
        empty = str(tmp_path / "empty.jsonl")
        open(empty, "w").close()
        with pytest.raises(StoreError, match="no campaign manifest"):
            ResultStore.open(empty, "c", "hash1", recover=False)
        assert open(empty, "rb").read() == b""

    def test_mid_file_corruption_is_not_recovered(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        store = ResultStore.create(path, "c", "hash1")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("garbage\n")
            handle.write(json.dumps({"kind": "cell", "cell_id": "after"}) + "\n")
        with pytest.raises(StoreError, match="corrupt"):
            ResultStore.open(path, "c", "hash1")


# ---------------------------------------------------------------------------
# running, resuming, determinism
# ---------------------------------------------------------------------------


def _records_as_canonical(store: ResultStore):
    return sorted(json.dumps(record, sort_keys=True)
                  for record in store.cell_records.values())


class TestRunAndResume:
    def test_full_run_completes_and_reports(self, tmp_path):
        plan = plan_campaign(campaign_from_dict(small_campaign()))
        store = fresh_store(tmp_path, plan)
        status = run_campaign(plan, store)
        assert status.complete and not status.interrupted
        assert status.executed_now == 4 and status.errors == 0
        report = render_report(plan, store.cell_records)
        assert report.count("YES (2/2)") >= 4

    def test_rerun_is_idempotent(self, tmp_path):
        plan = plan_campaign(campaign_from_dict(small_campaign()))
        store = fresh_store(tmp_path, plan)
        run_campaign(plan, store)
        first = _records_as_canonical(store)
        again = run_campaign(plan, store)
        assert again.executed_now == 0 and again.complete
        assert _records_as_canonical(store) == first

    @pytest.mark.parametrize("interrupt_after", [1, 2, 3])
    @pytest.mark.parametrize("jobs, jobs_backend, run_chunk", [
        (1, "thread", 1),       # sequential (jobs=1 never spawns workers)
        (2, "thread", 1),
        (2, "process", 2),
    ])
    def test_resume_matches_uninterrupted_run_byte_for_byte(
            self, tmp_path, interrupt_after, jobs, jobs_backend, run_chunk):
        plan = plan_campaign(campaign_from_dict(small_campaign()))
        fanout = dict(jobs=jobs, jobs_backend=jobs_backend, run_chunk=run_chunk)

        uninterrupted = fresh_store(tmp_path, plan, "full.jsonl")
        run_campaign(plan, uninterrupted, **fanout)
        expected_report = render_report(plan, uninterrupted.cell_records)

        interrupted = fresh_store(tmp_path, plan, "partial.jsonl")
        status = run_campaign(plan, interrupted, max_cells=interrupt_after, **fanout)
        assert status.interrupted and status.pending == 4 - interrupt_after
        # Reopen (as `repro campaign resume` does) and finish the grid.
        resumed = ResultStore.open(interrupted.path, plan.campaign.name,
                                   plan.campaign_hash)
        status = run_campaign(plan, resumed, **fanout)
        assert status.complete
        assert status.executed_now == 4 - interrupt_after

        assert _records_as_canonical(resumed) == _records_as_canonical(uninterrupted)
        assert render_report(plan, resumed.cell_records) == expected_report

    @pytest.mark.parametrize("interrupt_after", [1, 3])
    def test_resume_determinism_on_the_array_backend(self, tmp_path, interrupt_after):
        pytest.importorskip("numpy")
        plan = plan_campaign(campaign_from_dict(small_campaign(backend="array")))
        uninterrupted = fresh_store(tmp_path, plan, "full.jsonl")
        run_campaign(plan, uninterrupted)
        assert campaign_status(plan, uninterrupted).errors == 0

        interrupted = fresh_store(tmp_path, plan, "partial.jsonl")
        run_campaign(plan, interrupted, max_cells=interrupt_after)
        resumed = ResultStore.open(interrupted.path, plan.campaign.name,
                                   plan.campaign_hash)
        run_campaign(plan, resumed)
        assert _records_as_canonical(resumed) == _records_as_canonical(uninterrupted)
        assert render_report(plan, resumed.cell_records) == render_report(
            plan, uninterrupted.cell_records)

    def test_python_and_array_backends_agree_on_verdicts(self, tmp_path):
        pytest.importorskip("numpy")
        reports = {}
        for backend in ("python", "array"):
            plan = plan_campaign(campaign_from_dict(small_campaign(backend=backend)))
            store = fresh_store(tmp_path, plan, f"{backend}.jsonl")
            run_campaign(plan, store)
            reports[backend] = [
                record["result"]["successes"] == record["result"]["runs"]
                for record in sorted(store.cell_records.values(),
                                     key=lambda r: r["index"])
            ]
        assert reports["python"] == reports["array"] == [True] * 4

    def test_keyboard_interrupt_leaves_a_resumable_store(self, tmp_path, monkeypatch):
        plan = plan_campaign(campaign_from_dict(small_campaign()))
        store = fresh_store(tmp_path, plan)
        import repro.campaign.runner as runner_module
        real = runner_module.repeat_experiment
        calls = {"n": 0}

        def interrupting(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 2:
                raise KeyboardInterrupt
            return real(*args, **kwargs)

        monkeypatch.setattr(runner_module, "repeat_experiment", interrupting)
        status = run_campaign(plan, store)
        assert status.interrupted and status.keyboard_interrupt
        assert status.done == 2
        monkeypatch.setattr(runner_module, "repeat_experiment", real)

        resumed = ResultStore.open(store.path, plan.campaign.name, plan.campaign_hash)
        assert run_campaign(plan, resumed).complete
        fresh = fresh_store(tmp_path, plan, "fresh.jsonl")
        run_campaign(plan, fresh)
        assert _records_as_canonical(resumed) == _records_as_canonical(fresh)

    def test_backend_errors_become_error_cells_not_aborts(self, tmp_path):
        pytest.importorskip("numpy")
        # The array backend cannot compile adversaries: such a cell must be
        # recorded as a deterministic per-cell error, not abort the sweep.
        data = {
            "name": "error-cells",
            "base": {"protocol": "pairing", "population": 6, "simulator": "skno",
                     "model": "I3", "omission_bound": 1, "backend": "array"},
            "axes": {"omissions": [0, 1]},
            "runs": 1,
            "max_steps": 20_000,
        }
        plan = plan_campaign(campaign_from_dict(data))
        store = fresh_store(tmp_path, plan)
        status = run_campaign(plan, store)
        assert status.complete
        by_label = {cell.labels["omissions"]: store.record_for(cell.cell_id)
                    for cell in plan.cells}
        assert by_label["1"]["status"] == "error"
        report = render_report(plan, store.cell_records)
        assert "ERR" in report

    def test_bad_factory_kwargs_become_error_cells(self, tmp_path):
        # kwargs *contents* are only validated by the factories at build
        # time; a typo'd name must be a per-cell error, not a sweep abort.
        data = {
            "name": "bad-kwargs",
            "base": {"protocol": "pairing", "population": 6, "simulator": "skno",
                     "model": "I3", "omission_bound": 1, "omissions": 1,
                     "adversary_kwargs": {"rates": 0.5}},
            "axes": {"population": [6, 8]},
            "runs": 1,
            "max_steps": 20_000,
        }
        plan = plan_campaign(campaign_from_dict(data))
        store = fresh_store(tmp_path, plan)
        status = run_campaign(plan, store)
        assert status.complete and status.errors == 2
        record = store.record_for(plan.cells[0].cell_id)
        assert record["status"] == "error"
        assert "rates" in record["error"]

    def test_build_time_failures_become_error_cells(self, tmp_path, monkeypatch):
        # A key that passes plan-time validation but fails at build time
        # (e.g. registry drift) is a per-cell error, not a campaign abort.
        plan = plan_campaign(campaign_from_dict(small_campaign()))
        import repro.protocols.registry as registry
        monkeypatch.delitem(registry.PROTOCOLS, "epidemic")
        registry._BUILD_CACHE.clear()
        store = fresh_store(tmp_path, plan)
        status = run_campaign(plan, store)
        assert status.complete and status.errors == plan.total
        record = store.record_for(plan.cells[0].cell_id)
        assert record["status"] == "error"
        assert "epidemic" in record["error"]

    def test_single_axis_campaign_reports_a_verdict_column(self, tmp_path):
        data = {
            "name": "one-axis",
            "base": {"protocol": "epidemic"},
            "axes": {"population": [4, 6]},
            "runs": 1,
            "max_steps": 20_000,
        }
        plan = plan_campaign(campaign_from_dict(data))
        store = fresh_store(tmp_path, plan)
        run_campaign(plan, store)
        report = render_report(plan, store.cell_records)
        assert "| population | verdict" in report
        # One verdict per point — no fabricated n x n cross product.
        grid_lines = [line for line in report.splitlines()
                      if line.startswith("| 4 ") or line.startswith("| 6 ")]
        assert len(grid_lines) == 2
        assert all(line.count("YES") == 1 for line in grid_lines)

    def test_status_folds_the_store_without_running(self, tmp_path):
        plan = plan_campaign(campaign_from_dict(small_campaign()))
        store = fresh_store(tmp_path, plan)
        run_campaign(plan, store, max_cells=2)
        status = campaign_status(plan, store)
        assert (status.done, status.pending) == (2, 2)
        assert not status.complete


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCampaignCli:
    def _spec_file(self, tmp_path) -> str:
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(small_campaign()))
        return str(path)

    def test_run_status_resume_report_flow(self, tmp_path, capsys):
        spec = self._spec_file(tmp_path)
        store = str(tmp_path / "grid.results.jsonl")
        assert main(["campaign", "run", spec, "--store", store,
                     "--max-cells", "2", "--quiet"]) == 0
        assert "2/4 cells done" in capsys.readouterr().out
        assert main(["campaign", "status", spec, "--store", store]) == 1
        assert "pending" in capsys.readouterr().out
        assert main(["campaign", "resume", spec, "--store", store, "--quiet"]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", spec, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "YES (2/2)" in out and "per-cell details" in out

    def test_default_store_path_derives_from_spec(self, tmp_path, capsys):
        spec = self._spec_file(tmp_path)
        assert main(["campaign", "run", spec, "--quiet"]) == 0
        assert os.path.exists(str(tmp_path / "grid.results.jsonl"))
        capsys.readouterr()

    def test_resume_without_a_store_errors(self, tmp_path):
        spec = self._spec_file(tmp_path)
        with pytest.raises(SystemExit, match="no result store"):
            main(["campaign", "resume", spec])

    def test_changed_spec_cannot_reuse_the_store(self, tmp_path, capsys):
        spec = self._spec_file(tmp_path)
        store = str(tmp_path / "grid.results.jsonl")
        assert main(["campaign", "run", spec, "--store", store, "--quiet",
                     "--max-cells", "1"]) == 0
        capsys.readouterr()
        data = small_campaign()
        data["runs"] = 7
        (tmp_path / "grid.json").write_text(json.dumps(data))
        with pytest.raises(SystemExit, match="spec changed"):
            main(["campaign", "run", spec, "--store", store, "--quiet"])

    def test_keyboard_interrupt_exits_130_not_success(self, tmp_path, capsys,
                                                      monkeypatch):
        spec = self._spec_file(tmp_path)
        store = str(tmp_path / "grid.results.jsonl")
        import repro.campaign.runner as runner_module
        real = runner_module.repeat_experiment

        def interrupting(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(runner_module, "repeat_experiment", interrupting)
        assert main(["campaign", "run", spec, "--store", store, "--quiet"]) == 130
        monkeypatch.setattr(runner_module, "repeat_experiment", real)
        capsys.readouterr()
        # A --max-cells cap, by contrast, is a clean (exit 0) early stop.
        assert main(["campaign", "resume", spec, "--store", store, "--quiet",
                     "--max-cells", "1"]) == 0
        capsys.readouterr()

    def test_bad_fanout_arguments_are_clean_errors(self, tmp_path):
        spec = self._spec_file(tmp_path)
        with pytest.raises(SystemExit, match="--max-cells"):
            main(["campaign", "run", spec, "--max-cells", "0"])
        with pytest.raises(SystemExit, match="--jobs"):
            main(["campaign", "run", spec, "--jobs", "0"])
        with pytest.raises(SystemExit, match="--run-chunk"):
            main(["campaign", "run", spec, "--run-chunk", "0"])

    def test_malformed_spec_is_a_clean_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(SystemExit, match="campaign spec"):
            main(["campaign", "run", str(path)])


class TestListCommand:
    def test_lists_every_registry_and_backends(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in ("exact-majority", "skno", "stable-output", "ring-graph",
                    "bounded", "no1", "python", "array", "thread", "process"):
            assert key in out

    def test_surfaces_entry_point_errors(self, capsys, monkeypatch):
        import repro.protocols.registry as registry
        monkeypatch.setitem(
            registry.ENTRY_POINT_ERRORS, "broken-dist",
            "ImportError: no module named nope")
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "FAILED to load" in out
        assert "broken-dist: ImportError: no module named nope" in out


# ---------------------------------------------------------------------------
# satellite seams: result serialisation + the adversary registry
# ---------------------------------------------------------------------------


class TestExperimentResultSerialisation:
    def test_round_trip(self):
        result = ExperimentResult(
            runs=3, successes=2, convergence_steps=[10, 20],
            failures=["run 2: did not converge within 5 steps"])
        clone = ExperimentResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone == ExperimentResult(
            runs=3, successes=2, convergence_steps=[10, 20],
            failures=result.failures)
        assert clone.success_rate == result.success_rate


class TestAdversaryRegistry:
    @pytest.mark.parametrize("key, expected_class", [
        ("bounded", BoundedOmissionAdversary),
        ("no1", NO1Adversary),
        ("uo", UOAdversary),
        ("no", NOAdversary),
    ])
    def test_spec_builds_each_adversary_class(self, key, expected_class):
        spec = ExperimentSpec(protocol="pairing", population=6, simulator="skno",
                              model="I3", omission_bound=2, omissions=2,
                              adversary=key)
        adversary = spec.build().make_adversary(seed=1)
        assert type(adversary) is expected_class

    def test_bounded_budget_follows_the_spec(self):
        spec = ExperimentSpec(protocol="pairing", population=6, simulator="skno",
                              model="I3", omission_bound=3, omissions=3)
        adversary = spec.build().make_adversary(seed=0)
        assert adversary.max_omissions == 3

    def test_no_omissions_means_no_adversary(self):
        spec = ExperimentSpec(protocol="pairing", population=6, simulator="skno",
                              model="I3", adversary="uo")
        assert spec.build().make_adversary(seed=0) is None

    def test_unknown_adversary_key_is_rejected_at_build(self):
        spec = ExperimentSpec(protocol="pairing", population=6, simulator="skno",
                              model="I3", omissions=1, adversary="nonsense")
        with pytest.raises(KeyError, match="known adversaries"):
            spec.build()

    def test_registered_factories_are_listed(self):
        assert set(ADVERSARIES) >= {"bounded", "no1", "uo", "no"}

    def test_cli_run_accepts_an_adversary_class(self, capsys):
        exit_code = main([
            "run", "--protocol", "leader-election", "--model", "I3",
            "--simulator", "skno", "--omission-bound", "1", "--omissions", "1",
            "--adversary", "no1", "--population", "6", "--seed", "2",
            "--max-steps", "150000",
        ])
        assert exit_code == 0
        assert "converged" in capsys.readouterr().out
