"""Unit tests for the SID simulator (Figure 3 / Theorem 4.5)."""

import pytest

from repro.core.base import SimulatorError
from repro.core.sid import AVAILABLE, LOCKED, PAIRING, SIDSimulator, SIDState
from repro.interaction.models import IO
from repro.protocols.catalog.pairing import PairingProtocol
from repro.protocols.catalog.leader_election import LeaderElectionProtocol
from repro.protocols.state import Configuration


@pytest.fixture
def protocol():
    return PairingProtocol()


@pytest.fixture
def simulator(protocol):
    return SIDSimulator(protocol)


class TestConstruction:
    def test_initial_state_requires_id(self, simulator):
        with pytest.raises(SimulatorError):
            simulator.initial_state("c")

    def test_initial_state(self, simulator):
        state = simulator.initial_state("c", agent_id=7)
        assert state.my_id == 7
        assert state.sim == "c"
        assert state.phase == AVAILABLE
        assert state.id_other is None

    def test_initial_configuration_default_ids(self, simulator):
        config = simulator.initial_configuration(Configuration(["c", "p", "c"]))
        assert [state.my_id for state in config] == [0, 1, 2]

    def test_initial_configuration_custom_ids(self, simulator):
        config = simulator.initial_configuration(
            Configuration(["c", "p"]), ids=["alpha", "beta"]
        )
        assert [state.my_id for state in config] == ["alpha", "beta"]

    def test_initial_configuration_rejects_duplicate_ids(self, simulator):
        with pytest.raises(SimulatorError):
            simulator.initial_configuration(Configuration(["c", "p"]), ids=[1, 1])

    def test_initial_configuration_rejects_wrong_id_count(self, simulator):
        with pytest.raises(SimulatorError):
            simulator.initial_configuration(Configuration(["c", "p"]), ids=[1])

    def test_projection(self, simulator):
        state = simulator.initial_state("p", agent_id=3)
        assert simulator.project(state) == "p"

    def test_io_compatibility(self, simulator):
        assert "IO" in simulator.compatible_models


class TestFigure3Rules:
    """Each test checks one guarded rule of the Figure 3 pseudocode."""

    def test_lines_3_5_available_pairs_with_available(self, simulator):
        starter = SIDState(my_id=0, sim="p")
        reactor = SIDState(my_id=1, sim="c")
        after = simulator.f(starter, reactor)
        assert after.phase == PAIRING
        assert after.id_other == 0
        assert after.state_other == "p"
        assert after.sim == "c", "pairing does not change the simulated state"

    def test_lines_6_9_lock_and_starter_side_transition(self, simulator):
        # Agent 1 is pairing with agent 0 and recorded agent 0's state 'p'.
        starter = SIDState(my_id=1, sim="c", phase=PAIRING, id_other=0, state_other="p")
        reactor = SIDState(my_id=0, sim="p")
        after = simulator.f(starter, reactor)
        assert after.phase == LOCKED
        assert after.sim == "bot"          # delta(p, c)[0]
        assert after.id_other == 1
        assert after.state_other == "c"

    def test_lines_6_9_require_matching_snapshot(self, simulator):
        """The lock must not happen if the recorded snapshot is stale."""
        starter = SIDState(my_id=1, sim="c", phase=PAIRING, id_other=0, state_other="cs")
        reactor = SIDState(my_id=0, sim="p")
        after = simulator.f(starter, reactor)
        assert after.phase == AVAILABLE
        assert after.sim == "p"

    def test_lines_6_9_require_correct_target_id(self, simulator):
        starter = SIDState(my_id=1, sim="c", phase=PAIRING, id_other=9, state_other="p")
        reactor = SIDState(my_id=0, sim="p")
        after = simulator.f(starter, reactor)
        assert after.phase == AVAILABLE

    def test_lines_10_13_completion_and_reactor_side_transition(self, simulator):
        # Agent 0 locked with agent 1 (it already performed delta(p,c)[0] = bot);
        # agent 1, pairing with agent 0 and holding the snapshot 'p', completes.
        starter = SIDState(my_id=0, sim="bot", phase=LOCKED, id_other=1, state_other="c")
        reactor = SIDState(my_id=1, sim="c", phase=PAIRING, id_other=0, state_other="p")
        after = simulator.f(starter, reactor)
        assert after.phase == AVAILABLE
        assert after.sim == "cs"           # delta(p, c)[1], from the saved snapshot
        assert after.id_other is None
        assert after.state_other is None

    def test_lines_14_16_rollback_when_partner_moved_on(self, simulator):
        # Agent 1 is pairing with agent 0, but agent 0 is now pairing with agent 2.
        starter = SIDState(my_id=0, sim="p", phase=PAIRING, id_other=2, state_other="c")
        reactor = SIDState(my_id=1, sim="c", phase=PAIRING, id_other=0, state_other="p")
        after = simulator.f(starter, reactor)
        assert after.phase == AVAILABLE
        assert after.sim == "c", "rollback must not change the simulated state"

    def test_lines_14_16_release_locked_agent_after_completion(self, simulator):
        # Agent 0 is locked with agent 1; agent 1 already completed (available).
        starter = SIDState(my_id=1, sim="cs")
        reactor = SIDState(my_id=0, sim="bot", phase=LOCKED, id_other=1, state_other="c")
        after = simulator.f(starter, reactor)
        assert after.phase == AVAILABLE
        assert after.sim == "bot"

    def test_unrelated_observation_changes_nothing(self, simulator):
        starter = SIDState(my_id=2, sim="p", phase=PAIRING, id_other=5, state_other="c")
        reactor = SIDState(my_id=1, sim="c", phase=PAIRING, id_other=0, state_other="p")
        assert simulator.f(starter, reactor) == reactor

    def test_locked_agent_ignores_strangers(self, simulator):
        starter = SIDState(my_id=7, sim="c")
        reactor = SIDState(my_id=0, sim="bot", phase=LOCKED, id_other=1, state_other="c")
        assert simulator.f(starter, reactor) == reactor

    def test_starter_is_never_modified_by_io(self, simulator):
        """Under IO the starter's state is untouched by construction of the model."""
        starter = simulator.initial_state("p", agent_id=0)
        reactor = simulator.initial_state("c", agent_id=1)
        new_starter, _ = IO.apply(simulator, starter, reactor)
        assert new_starter == starter


class TestEndToEndTwoAgents:
    def test_full_simulated_interaction_in_three_observations(self, simulator):
        from repro.engine.engine import SimulationEngine
        from repro.scheduling.runs import Run

        config = simulator.initial_configuration(Configuration(["p", "c"]))
        engine = SimulationEngine(simulator, IO, scheduler=None)
        # (0,1): 1 pairs with 0; (1,0): 0 locks and does fs; (0,1): 1 completes fr.
        trace = engine.replay(config, Run.from_pairs([(0, 1), (1, 0), (0, 1)]))
        assert simulator.project_configuration(trace.final_configuration) == Configuration(
            ["bot", "cs"]
        )
        matching = simulator.extract_matching(trace)
        assert len(matching.pairs) == 1
        assert matching.invalid_pairs(simulator.protocol) == []

    def test_events_identify_partners(self, simulator):
        from repro.engine.engine import SimulationEngine
        from repro.scheduling.runs import Run

        config = simulator.initial_configuration(Configuration(["p", "c"]))
        engine = SimulationEngine(simulator, IO, scheduler=None)
        trace = engine.replay(config, Run.from_pairs([(0, 1), (1, 0), (0, 1)]))
        events = simulator.extract_events(trace)
        assert len(events) == 2
        lock, completion = events
        assert lock.role == "starter" and lock.agent == 0 and lock.partner_agent == 1
        assert completion.role == "reactor" and completion.agent == 1

    def test_asymmetric_protocol_is_simulated_correctly(self):
        """Leader election: the simulated roles matter, not the physical ones."""
        from repro.engine.engine import SimulationEngine
        from repro.scheduling.runs import Run

        protocol = LeaderElectionProtocol()
        simulator = SIDSimulator(protocol)
        config = simulator.initial_configuration(Configuration(["L", "L"]))
        engine = SimulationEngine(simulator, IO, scheduler=None)
        trace = engine.replay(config, Run.from_pairs([(0, 1), (1, 0), (0, 1)]))
        projected = simulator.project_configuration(trace.final_configuration)
        assert projected.multiset() == {"L": 1, "F": 1}
