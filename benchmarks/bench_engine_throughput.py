"""Engine throughput: fast-path trace policies vs. the seed execution path.

Measures interactions/second for populations n in {10^2, 10^3, 10^4} under
the TW, I3 and IO interaction models, with and without an omission adversary
(only I3 admits omissions among the three), across four execution paths:

``legacy``
    The seed engine loop: an immutable :class:`Configuration` threaded
    through :meth:`Trace.record`, paying an O(n) tuple copy per interaction.
``full``
    The fast-path core recording a complete trace (per-step
    :class:`TraceStep` allocation, O(1) buffer writes, one freeze at the end).
``counts-only``
    The fast-path core recording nothing per step, consuming the scheduler
    through batched draws (the default chunk size) — with an adversary,
    through the budget-aware batched injection protocol on top.  This is
    the headline fast path.
``counts-only/step``
    The same loop forced to ``chunk_size=1`` with the scheduler's batched
    draw overridden by the per-step fallback (``next_interaction`` per
    step, as the pre-batching engine drew) — isolates the batched-draw
    speedup, since batched and per-step execution are bitwise identical.
    On adversary rows this is the per-step injection interleaving, so the
    same column doubles as the batched-adversary control.
``ring``
    The fast-path core keeping only the last 64 steps.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --quick
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --adversary bounded
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --backend array
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --obs

``--adversary`` picks the adversary class attached to the omission-model
rows: ``uo`` (the flooding UOAdversary, the historical default) or
``bounded`` (a ``BoundedOmissionAdversary`` with a 64-omission budget — the
Theorem 4.1 assumption, and what the CI smoke exercises so the batched
pass-through after budget exhaustion stays on the radar).

``--backend array`` switches to the execution-backend comparison: the
columnar numpy array engine (``repro[fast]`` extra) versus the python fast
path, counts-only, on two catalog protocols at n = 10^4 and 10^5.  Its
guard: at n = 10^5 the array backend must be **≥ 5x** the python backend on
*both* protocols (typically 8-13x; run in the CI numpy job).

Combining both flags — ``--backend array --adversary bounded`` (or ``uo``)
— runs the **adversary-on-array** comparison instead: the compiled
injection-schedule pipeline versus the python batched adversary protocol,
counts-only, one-way epidemic under I3 at n = 10^4 and 10^5.  Its guard:
at n = 10^5 the array backend must be **≥ 3x** the python backend (looser
than the adversary-free guard because the schedule walk itself stays in
python).  ``--json PATH`` appends the measured cell to a JSON file
(read-update-merge keyed by adversary class, so the separate ``bounded``
and ``uo`` CI invocations accumulate into one ``BENCH_array_adversary.json``
artifact).

``--obs`` runs the **observability-overhead** guard instead: the shipped
:func:`run_until_stable` — whose per-run telemetry seam costs one global
recorder read plus one identity check when observability is off (the
default ``NullRecorder``) — versus a control calling
:func:`run_until_stable_core` directly, bypassing the seam entirely.
Counts-only epidemic under TW at n = 10^4 and 10^5, interleaved repeats,
best-of per path.  Its guard: at n = 10^5 the shipped path must keep
**≥ 97%** of the control's throughput (a ≤ 3% NullRecorder tax; typically
indistinguishable from noise).  ``--json PATH`` merges the guarded cell
under the ``"obs-overhead"`` key (e.g. ``BENCH_engine_throughput.json``).

``--transport`` runs the **result-transport** comparison instead: process
fan-out (``jobs=2``, chunked workers) returning results over the
shared-memory columnar transport versus the chunked-pickle baseline, on
short counts-only epidemic runs (array engine backend) at n = 10^4 and
10^5 — the regime where shipping a 10^5-state final configuration through
the pickle pipe dominates the actual simulation.  Both transports must
fold to the identical aggregate (checked every invocation).  Its guard: at
n = 10^5 the shm transport must be **≥ 1.5x** chunked-pickle throughput
(typically 2-4x; run in the CI numpy job).  ``--json PATH`` merges the
guarded cell under the ``"transport"`` key (e.g. ``BENCH_transport.json``).

Headline guards at n=10^4 in the default mode, failing the benchmark when
they regress: ``counts-only`` must be ≥ 5x ``legacy`` and batched draws
≥ 1.3x per-step draws (both TW, no adversary; typically ~2x), and the
batched adversary pipeline must be ≥ 1.3x its per-step control (I3,
adversary attached; typically ~2x).  The guards are deliberately loose so
shared-CI noise cannot fail an unrelated change.  ``--json PATH`` merges
the default mode's headline cells under the ``"engine-throughput"`` key
(e.g. ``BENCH_engine_throughput.json``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Optional

from repro.adversary.omission import BoundedOmissionAdversary, UOAdversary
from repro.analysis.reporting import format_table
from repro.core.trivial import TrivialTwoWaySimulator
from repro.engine.engine import SimulationEngine
from repro.engine.trace import Trace
from repro.interaction.models import get_model
from repro.protocols.catalog.epidemic import (
    INFORMED,
    SUSCEPTIBLE,
    EpidemicProtocol,
    OneWayEpidemicProtocol,
)
from repro.protocols.catalog.leader_election import LEADER, LeaderElectionProtocol
from repro.protocols.state import Configuration
from repro.scheduling.scheduler import RandomScheduler, Scheduler, SchedulerExhausted

MODELS = ("TW", "I3", "IO")
POLICIES = ("legacy", "full", "counts-only", "counts-only/step", "ring")

#: Catalog workloads of the ``--backend array`` comparison; the ≥5x guard
#: must hold on every one of them.
ARRAY_WORKLOADS = (
    ("epidemic",
     lambda: TrivialTwoWaySimulator(EpidemicProtocol()),
     lambda n: Configuration([INFORMED] + [SUSCEPTIBLE] * (n - 1))),
    ("leader-election",
     lambda: TrivialTwoWaySimulator(LeaderElectionProtocol()),
     lambda n: Configuration([LEADER] * n)),
)

#: The array guard's population and factor (acceptance criterion: ≥5x the
#: python fast path at n=10^5 on at least two catalog protocols).
ARRAY_GUARD_POPULATION = 100_000
ARRAY_GUARD_FACTOR = 5.0

#: The adversary-on-array guard: ≥3x at n=10^5 for bounded and uo alike.
#: Looser than the adversary-free guard because the injection-schedule walk
#: itself runs in python (only the merge and execution are columnar).
ADVERSARY_GUARD_FACTOR = 3.0

#: The result-transport guard: at n=10^5, process fan-out over the
#: shared-memory columnar transport must be ≥1.5x the chunked-pickle
#: baseline on short counts-only runs.  Loose relative to the typical 2-4x
#: so shared-CI noise cannot fail an unrelated change.
TRANSPORT_GUARD_POPULATION = 100_000
TRANSPORT_GUARD_FACTOR = 1.5
TRANSPORT_SIZES = (10_000, 100_000)

#: The observability-overhead guard: with the default ``NullRecorder``
#: installed, the shipped ``run_until_stable`` must keep ≥97% of the
#: throughput of a control that bypasses the telemetry seam entirely —
#: i.e. observability-off costs at most 3%.  The seam is per run (one
#: global read, one identity check), so the real tax is noise-level; the
#: guard exists to catch a regression that sneaks recording into a hot
#: loop.
OBS_GUARD_POPULATION = 100_000
OBS_GUARD_RATIO = 0.97
OBS_SIZES = (10_000, 100_000)
OBS_REPEATS = 5


def build_adversary(kind: str, model, seed: int):
    """The benchmark's canonical adversary instances, shared by every mode."""
    if kind == "bounded":
        return BoundedOmissionAdversary(model, max_omissions=64, rate=0.5, seed=seed)
    return UOAdversary(model, rate=0.25, max_per_gap=3, seed=seed)


def build_engine(model_name: str, n: int, seed: int, with_adversary: bool,
                 adversary_kind: str = "uo") -> SimulationEngine:
    model = get_model(model_name)
    if model.one_way:
        program = OneWayEpidemicProtocol()
    else:
        program = TrivialTwoWaySimulator(EpidemicProtocol())
    adversary = None
    if with_adversary:
        adversary = build_adversary(adversary_kind, model, seed)
    return SimulationEngine(program, model, RandomScheduler(n, seed=seed), adversary=adversary)


def initial_configuration(n: int) -> Configuration:
    return Configuration([INFORMED] + [SUSCEPTIBLE] * (n - 1))


def run_legacy(engine: SimulationEngine, initial: Configuration, steps: int) -> float:
    """The seed execution path, reproduced verbatim: O(n) copy per step."""
    trace = Trace(initial)
    configuration = initial
    scheduler_step = 0
    executed = 0
    start = time.perf_counter()
    while executed < steps:
        try:
            scheduled = engine.scheduler.next_interaction(scheduler_step)
        except SchedulerExhausted:
            break
        scheduler_step += 1
        batch = [scheduled]
        if engine.adversary is not None:
            injected = engine.adversary.interactions_before(
                step=scheduler_step - 1, scheduled=scheduled, n=len(configuration))
            batch = list(injected) + [scheduled]
        for interaction in batch:
            if executed >= steps:
                break
            starter_pre = configuration[interaction.starter]
            reactor_pre = configuration[interaction.reactor]
            starter_post, reactor_post = engine.model.apply(
                engine.program, starter_pre, reactor_pre, interaction.omission)
            trace.record(interaction, starter_post, reactor_post)
            configuration = trace.final_configuration
            executed += 1
    return time.perf_counter() - start


def run_fastpath(engine: SimulationEngine, initial: Configuration, steps: int,
                 policy: str, chunk_size: Optional[int] = None) -> float:
    start = time.perf_counter()
    engine.execute(initial, steps, trace_policy=policy, ring_size=64,
                   chunk_size=chunk_size)
    return time.perf_counter() - start


def measure(model_name: str, n: int, steps: int, with_adversary: bool, seed: int = 0,
            adversary_kind: str = "uo"):
    """One benchmark cell: interactions/sec per execution path."""
    rates = {}
    for policy in POLICIES:
        engine = build_engine(model_name, n, seed, with_adversary, adversary_kind)
        initial = initial_configuration(n)
        if policy == "legacy":
            elapsed = run_legacy(engine, initial, steps)
        elif policy == "counts-only/step":
            # Shadow the vectorized batched draw with the base per-step
            # fallback so this cell measures true per-step draws
            # (next_interaction per step), not k=1 vectorized calls.
            engine.scheduler.next_interactions = (
                Scheduler.next_interactions.__get__(engine.scheduler))
            elapsed = run_fastpath(engine, initial, steps, "counts-only", chunk_size=1)
        else:
            elapsed = run_fastpath(engine, initial, steps, policy)
        rates[policy] = steps / elapsed if elapsed > 0 else float("inf")
    return rates


def run_backend_comparison(args) -> int:
    """``--backend array``: columnar engine vs. python fast path, counts-only.

    Both backends execute pure budget runs (``SimulationEngine.execute``,
    no predicate) from the same seed; the array backend gets a longer
    budget because measuring 10^6+ it/s over a python-sized budget would
    be all fixed cost.
    """
    sizes = args.sizes or [10_000, ARRAY_GUARD_POPULATION]
    if ARRAY_GUARD_POPULATION not in sizes:
        sizes = sorted(sizes + [ARRAY_GUARD_POPULATION])
    python_steps = args.steps or (50_000 if args.quick else 200_000)
    array_steps = python_steps * 5

    rows = []
    guarded_speedups = []
    for protocol_name, make_program, make_initial in ARRAY_WORKLOADS:
        for n in sizes:
            rates = {}
            for backend, steps in (("python", python_steps), ("array", array_steps)):
                engine = SimulationEngine(
                    make_program(), get_model("TW"),
                    RandomScheduler(n, seed=0), backend=backend)
                initial = make_initial(n)
                start = time.perf_counter()
                engine.execute(initial, steps, trace_policy="counts-only")
                elapsed = time.perf_counter() - start
                rates[backend] = steps / elapsed if elapsed > 0 else float("inf")
            speedup = rates["array"] / rates["python"]
            if n == ARRAY_GUARD_POPULATION:
                guarded_speedups.append((protocol_name, speedup))
            rows.append([
                protocol_name, n,
                f"{rates['python']:,.0f}", f"{rates['array']:,.0f}",
                f"{speedup:.1f}x",
            ])

    print(format_table(
        ["protocol", "n", "python counts-only it/s", "array counts-only it/s",
         "array vs python"],
        rows,
    ))
    print()
    failed = False
    for protocol_name, speedup in guarded_speedups:
        print(f"headline: array backend is {speedup:.1f}x the python fast path "
              f"at n={ARRAY_GUARD_POPULATION:,} ({protocol_name})")
        if speedup < ARRAY_GUARD_FACTOR:
            print(f"FAIL: expected at least {ARRAY_GUARD_FACTOR:.0f}x at "
                  f"n={ARRAY_GUARD_POPULATION:,} on {protocol_name}",
                  file=sys.stderr)
            failed = True
    return 1 if failed else 0


def _merge_bench_json(path: str, key: str, payload: dict) -> None:
    """Read-update-merge ``payload`` under ``key`` into ``path``.

    Separate CI invocations (one per adversary class, one per benchmark
    mode) accumulate into a single artifact; a corrupt or missing file
    starts over rather than failing the benchmark.
    """
    data: dict = {}
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict):
                data = loaded
        except (OSError, ValueError):
            data = {}
    data[key] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path} [{key}]")


def run_adversary_backend_comparison(args) -> int:
    """``--backend array --adversary <kind>``: compiled injection schedules
    vs. the python batched adversary protocol, counts-only.

    One workload — one-way epidemic under I3 (the omission-admitting model
    the equivalence suite anchors on) with the chosen adversary attached to
    both backends from the same seed.  Pure budget runs, so both backends
    execute exactly ``steps`` interactions (injections count toward the
    budget) and it/s is directly comparable.
    """
    sizes = args.sizes or [10_000, ARRAY_GUARD_POPULATION]
    if ARRAY_GUARD_POPULATION not in sizes:
        sizes = sorted(sizes + [ARRAY_GUARD_POPULATION])
    python_steps = args.steps or (50_000 if args.quick else 200_000)
    array_steps = python_steps * 5

    model = get_model("I3")
    rows = []
    guard_cell: Optional[dict] = None
    for n in sizes:
        rates = {}
        for backend, steps in (("python", python_steps), ("array", array_steps)):
            engine = SimulationEngine(
                OneWayEpidemicProtocol(), model,
                RandomScheduler(n, seed=0),
                adversary=build_adversary(args.adversary, model, seed=0),
                backend=backend)
            initial = initial_configuration(n)
            start = time.perf_counter()
            outcome = engine.execute(initial, steps, trace_policy="counts-only")
            elapsed = time.perf_counter() - start
            rates[backend] = outcome.steps / elapsed if elapsed > 0 else float("inf")
        speedup = rates["array"] / rates["python"]
        if n == ARRAY_GUARD_POPULATION:
            guard_cell = {
                "adversary": args.adversary,
                "model": "I3",
                "protocol": "one-way-epidemic",
                "n": n,
                "python_steps": python_steps,
                "array_steps": array_steps,
                "python_its": round(rates["python"], 1),
                "array_its": round(rates["array"], 1),
                "speedup": round(speedup, 2),
                "guard_factor": ADVERSARY_GUARD_FACTOR,
            }
        rows.append([
            args.adversary, n,
            f"{rates['python']:,.0f}", f"{rates['array']:,.0f}",
            f"{speedup:.1f}x",
        ])

    print(format_table(
        ["adversary", "n", "python counts-only it/s", "array counts-only it/s",
         "array vs python"],
        rows,
    ))
    print()
    assert guard_cell is not None
    print(f"headline: array backend with the {args.adversary} adversary is "
          f"{guard_cell['speedup']:.1f}x the python batched protocol at "
          f"n={ARRAY_GUARD_POPULATION:,} (I3, one-way epidemic)")
    if args.json:
        _merge_bench_json(args.json, args.adversary, guard_cell)
    if guard_cell["speedup"] < ADVERSARY_GUARD_FACTOR:
        print(f"FAIL: expected at least {ADVERSARY_GUARD_FACTOR:.0f}x at "
              f"n={ARRAY_GUARD_POPULATION:,} with the {args.adversary} adversary",
              file=sys.stderr)
        return 1
    return 0


def run_obs_overhead_comparison(args) -> int:
    """``--obs``: the NullRecorder tax of the per-run observability seam.

    Both paths execute the identical python-backend convergence loop on
    a counts-only epidemic run under TW from the same seed, driven by a
    never-satisfied O(1) incremental predicate so the full step budget is
    spent in the step loop (a plain-callable predicate would rescan all n
    agents per step and drown the seam in predicate cost):

    * ``control`` calls :func:`run_until_stable_core` directly — the raw
      loop, no telemetry seam at all;
    * ``shipped`` calls :func:`run_until_stable` with the process-wide
      default recorder (the ``NullRecorder``) — paying the seam's one
      global read and one identity check per run.

    Repeats are interleaved (control, shipped, control, ...) so clock
    drift hits both paths alike, and each path keeps its best rate.
    """
    from repro.engine.convergence import run_until_stable, run_until_stable_core
    from repro.engine.fastpath import IncrementalPredicate
    from repro.obs.recorder import NULL_RECORDER, get_recorder

    class _NeverStable(IncrementalPredicate):
        """O(1) predicate that never fires: the run spends its full budget."""

        consumes_deltas = False

        def reset(self, configuration) -> bool:
            return False

        def update(self, deltas) -> bool:
            return False

    if get_recorder() is not NULL_RECORDER:
        print("FAIL: the --obs guard measures the observability-off path "
              "and needs the NullRecorder installed", file=sys.stderr)
        return 1

    sizes = args.sizes or list(OBS_SIZES)
    if OBS_GUARD_POPULATION not in sizes:
        sizes = sorted(sizes + [OBS_GUARD_POPULATION])
    steps = args.steps or (20_000 if args.quick else 100_000)

    def measure_once(n: int, shipped: bool) -> float:
        engine = build_engine("TW", n, seed=0, with_adversary=False)
        initial = initial_configuration(n)
        predicate = _NeverStable()
        start = time.perf_counter()
        if shipped:
            result = run_until_stable(engine, initial, predicate,
                                      max_steps=steps, trace_policy="counts-only")
        else:
            result = run_until_stable_core(
                engine.program, engine.model, engine.scheduler, engine.adversary,
                initial, predicate, max_steps=steps, trace_policy="counts-only")
        elapsed = time.perf_counter() - start
        assert result.steps_executed == steps
        return steps / elapsed if elapsed > 0 else float("inf")

    rows = []
    guard_cell: Optional[dict] = None
    for n in sizes:
        best = {"control": 0.0, "shipped": 0.0}
        for _ in range(OBS_REPEATS):
            best["control"] = max(best["control"], measure_once(n, shipped=False))
            best["shipped"] = max(best["shipped"], measure_once(n, shipped=True))
        ratio = best["shipped"] / best["control"]
        if n == OBS_GUARD_POPULATION:
            guard_cell = {
                "protocol": "epidemic",
                "model": "TW",
                "n": n,
                "steps": steps,
                "repeats": OBS_REPEATS,
                "control_its": round(best["control"], 1),
                "shipped_its": round(best["shipped"], 1),
                "ratio": round(ratio, 4),
                "guard_ratio": OBS_GUARD_RATIO,
            }
        rows.append([
            n, steps,
            f"{best['control']:,.0f}", f"{best['shipped']:,.0f}",
            f"{ratio:.3f}",
        ])

    print(format_table(
        ["n", "steps", "control it/s (no seam)", "shipped it/s (NullRecorder)",
         "shipped/control"],
        rows,
    ))
    print()
    assert guard_cell is not None
    print(f"headline: with observability off, run_until_stable keeps "
          f"{guard_cell['ratio'] * 100:.1f}% of the seamless control's "
          f"throughput at n={OBS_GUARD_POPULATION:,} (TW, counts-only)")
    if args.json:
        _merge_bench_json(args.json, "obs-overhead", guard_cell)
    if guard_cell["ratio"] < OBS_GUARD_RATIO:
        print(f"FAIL: expected the NullRecorder seam to keep at least "
              f"{OBS_GUARD_RATIO * 100:.0f}% of control throughput at "
              f"n={OBS_GUARD_POPULATION:,}", file=sys.stderr)
        return 1
    return 0


def run_transport_comparison(args) -> int:
    """``--transport``: shared-memory result transport vs. chunked pickle.

    Process fan-out (``jobs=2``, ``run_chunk=8``) of short counts-only
    epidemic runs on the array engine backend — the workload the transport
    was built for: each run's payload is dominated by its final
    configuration, which the pickle baseline ships as a 10^4-10^5-state
    python object per run while the shm transport ships one fixed-width
    int64 row per run in a per-batch arena (and, with
    ``materialize_final=False`` riding along, never even materialises the
    python object in the worker).  Both transports must fold to the same
    aggregate; the guard holds at n=10^5 where the object detour is
    largest.
    """
    try:
        import numpy  # noqa: F401 - availability probe
    except ImportError:
        print("the --transport comparison runs its workload on the array "
              "engine backend and needs numpy; install the fast extra "
              "(pip install 'repro[fast]')", file=sys.stderr)
        return 1
    from repro.engine.experiment import repeat_experiment
    from repro.protocols.registry import ExperimentSpec

    sizes = args.sizes or list(TRANSPORT_SIZES)
    if TRANSPORT_GUARD_POPULATION not in sizes:
        sizes = sorted(sizes + [TRANSPORT_GUARD_POPULATION])
    runs = 32 if args.quick else 96
    max_steps = args.steps or 200
    jobs, run_chunk = 2, 8

    rows = []
    guard_cell: Optional[dict] = None
    for n in sizes:
        spec = ExperimentSpec(
            protocol="epidemic", population=n, model="TW", backend="array")
        rates = {}
        folded = {}
        for transport in ("pickle", "shm"):
            start = time.perf_counter()
            result = repeat_experiment(
                spec=spec, runs=runs, max_steps=max_steps, base_seed=0,
                jobs=jobs, jobs_backend="process", run_chunk=run_chunk,
                trace_policy="counts-only", result_transport=transport)
            elapsed = time.perf_counter() - start
            rates[transport] = runs / elapsed if elapsed > 0 else float("inf")
            folded[transport] = result.to_dict()
        if folded["pickle"] != folded["shm"]:
            print(f"FAIL: shm and pickle transports folded to different "
                  f"aggregates at n={n:,}", file=sys.stderr)
            return 1
        speedup = rates["shm"] / rates["pickle"]
        if n == TRANSPORT_GUARD_POPULATION:
            guard_cell = {
                "protocol": "epidemic",
                "model": "TW",
                "engine_backend": "array",
                "n": n,
                "runs": runs,
                "max_steps": max_steps,
                "jobs": jobs,
                "run_chunk": run_chunk,
                "pickle_runs_per_s": round(rates["pickle"], 1),
                "shm_runs_per_s": round(rates["shm"], 1),
                "speedup": round(speedup, 2),
                "guard_factor": TRANSPORT_GUARD_FACTOR,
            }
        rows.append([
            n, runs, max_steps,
            f"{rates['pickle']:,.1f}", f"{rates['shm']:,.1f}",
            f"{speedup:.2f}x",
        ])

    print(format_table(
        ["n", "runs", "max_steps", "pickle runs/s", "shm runs/s",
         "shm vs pickle"],
        rows,
    ))
    print()
    assert guard_cell is not None
    print(f"headline: the shm result transport is {guard_cell['speedup']:.2f}x "
          f"chunked pickle at n={TRANSPORT_GUARD_POPULATION:,} "
          f"(process fan-out, counts-only, array backend)")
    if args.json:
        _merge_bench_json(args.json, "transport", guard_cell)
    if guard_cell["speedup"] < TRANSPORT_GUARD_FACTOR:
        print(f"FAIL: expected the shm transport to be at least "
              f"{TRANSPORT_GUARD_FACTOR:.1f}x chunked pickle at "
              f"n={TRANSPORT_GUARD_POPULATION:,}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small populations and step counts (CI smoke test)")
    parser.add_argument("--steps", type=int, default=None,
                        help="interactions per measurement (default: scaled to n)")
    parser.add_argument("--sizes", type=int, nargs="+", default=None,
                        help="population sizes (default: 100 1000 10000)")
    parser.add_argument("--adversary", choices=("uo", "bounded"), default=None,
                        help="adversary class for the adversary-present rows "
                             "(default uo); with --backend array, switches to "
                             "the adversary-on-array comparison and its ≥3x "
                             "guard at n=100,000")
    parser.add_argument("--backend", choices=("python", "array"), default="python",
                        help="python: the historical trace-policy comparison; "
                             "array: the execution-backend comparison with its "
                             "≥5x guard at n=100,000 (needs numpy)")
    parser.add_argument("--transport", action="store_true",
                        help="run the result-transport comparison instead: "
                             "process fan-out over the shared-memory columnar "
                             "transport vs chunked pickle, with its ≥1.5x "
                             "guard at n=100,000 (needs numpy)")
    parser.add_argument("--obs", action="store_true",
                        help="run the observability-overhead guard instead: "
                             "the shipped run_until_stable (NullRecorder "
                             "installed) must keep ≥97%% of the throughput "
                             "of a control bypassing the telemetry seam, "
                             "at n=100,000")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="merge the mode's guarded measurement into this "
                             "JSON artifact (e.g. BENCH_transport.json, "
                             "BENCH_array_adversary.json, "
                             "BENCH_engine_throughput.json)")
    args = parser.parse_args(argv)

    if args.obs:
        return run_obs_overhead_comparison(args)
    if args.transport:
        return run_transport_comparison(args)
    if args.backend == "array":
        if args.adversary is not None:
            return run_adversary_backend_comparison(args)
        return run_backend_comparison(args)
    if args.adversary is None:
        args.adversary = "uo"

    if args.quick:
        sizes = args.sizes or [100, 1000]
    else:
        sizes = args.sizes or [100, 1000, 10_000]

    rows = []
    headline: Optional[float] = None
    batch_headline: Optional[float] = None
    adversary_batch_headline: Optional[float] = None
    for model_name in MODELS:
        adversary_options = [False]
        if get_model(model_name).allows_omissions:
            adversary_options.append(True)
        for with_adversary in adversary_options:
            for n in sizes:
                if args.steps is not None:
                    steps = args.steps
                elif args.quick:
                    steps = 2_000
                else:
                    steps = 20_000 if n >= 10_000 else 50_000
                rates = measure(model_name, n, steps, with_adversary,
                                adversary_kind=args.adversary)
                speedup = rates["counts-only"] / rates["legacy"]
                batch_speedup = rates["counts-only"] / rates["counts-only/step"]
                if n == 10_000 and model_name == "TW" and not with_adversary:
                    headline = speedup
                    batch_headline = batch_speedup
                if n == 10_000 and model_name == "I3" and with_adversary:
                    adversary_batch_headline = batch_speedup
                rows.append([
                    model_name,
                    "yes" if with_adversary else "no",
                    n,
                    steps,
                    f"{rates['legacy']:,.0f}",
                    f"{rates['full']:,.0f}",
                    f"{rates['counts-only']:,.0f}",
                    f"{rates['counts-only/step']:,.0f}",
                    f"{rates['ring']:,.0f}",
                    f"{speedup:.1f}x",
                    f"{batch_speedup:.1f}x",
                ])

    print(format_table(
        ["model", "adversary", "n", "steps", "legacy it/s", "full it/s",
         "counts-only it/s", "counts-only/step it/s", "ring it/s",
         "counts-only vs legacy", "batched vs per-step"],
        rows,
    ))
    failed = False
    if headline is not None:
        print()
        print(f"headline: counts-only is {headline:.1f}x the seed path at n=10,000 (TW)")
        if headline < 5.0:
            print("FAIL: expected at least a 5x speedup at n=10,000", file=sys.stderr)
            failed = True
    if batch_headline is not None:
        print(f"headline: batched draws are {batch_headline:.1f}x per-step draws "
              "at n=10,000 (TW, counts-only)")
        if batch_headline < 1.3:
            print("FAIL: expected batched draws to be at least 1.3x per-step draws "
                  "at n=10,000", file=sys.stderr)
            failed = True
    if adversary_batch_headline is not None:
        print(f"headline: the batched adversary pipeline is "
              f"{adversary_batch_headline:.1f}x its per-step control at n=10,000 "
              f"(I3, {args.adversary} adversary, counts-only)")
        if adversary_batch_headline < 1.3:
            print("FAIL: expected the batched adversary pipeline to be at least "
                  "1.3x per-step execution at n=10,000", file=sys.stderr)
            failed = True
    if args.json and headline is not None:
        _merge_bench_json(args.json, "engine-throughput", {
            "n": 10_000,
            "model": "TW",
            "adversary": args.adversary,
            "counts_only_vs_legacy": round(headline, 2),
            "batched_vs_per_step": (
                round(batch_headline, 2) if batch_headline is not None else None),
            "adversary_batched_vs_per_step": (
                round(adversary_batch_headline, 2)
                if adversary_batch_headline is not None else None),
            "guard_factors": {"counts_only_vs_legacy": 5.0,
                              "batched_vs_per_step": 1.3,
                              "adversary_batched_vs_per_step": 1.3},
        })
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
