"""THM-3.2: a single omission (NO1 adversary) breaks simulation in T1 / I1 / I2.

The benchmark runs ``SKnO(o=1)`` — a simulator that *does* tolerate one
omission in the models it was designed for — on the weak models ``I1``,
``I2`` and ``T1``, injecting exactly one omission while the first token is
in flight, and then letting a long fair schedule run.  Per Theorem 3.2 the
simulation cannot recover: no agent ever commits the simulated Pairing
interaction (liveness failure).  The control rows run the *same* attack on
``I3``/``I4``, where the detection capability lets the simulator recover.
"""

from __future__ import annotations

import pytest

from repro.adversary.constructions import no1_liveness_attack
from repro.core.skno import SKnOSimulator
from repro.interaction.adapters import one_way_as_two_way
from repro.protocols.catalog.pairing import PairingProtocol
from repro.protocols.state import Configuration

MAX_STEPS = 30_000


def run_no1(model_name: str):
    protocol = PairingProtocol()
    simulator = SKnOSimulator(
        protocol,
        omission_bound=1,
        variant="I4" if model_name == "I4" else "I3",
    )
    program = one_way_as_two_way(simulator) if model_name == "T1" else simulator
    return no1_liveness_attack(
        program,
        model_name,
        target_state="cs",
        expected_committed=1,
        initial_p_configuration=Configuration(["p", "c"]),
        safety_bound=1,
        max_steps=MAX_STEPS,
    )


def no1_sweep(model_names):
    return [(name, run_no1(name)) for name in model_names]


def test_theorem_3_2_weak_models_fail(benchmark, table_printer):
    results = benchmark.pedantic(
        no1_sweep, args=(["I1", "I2", "T1", "I3", "I4"],), rounds=1, iterations=1)
    rows = []
    for name, result in results:
        if result.safety_violated:
            outcome = "safety violated"
        elif result.liveness_violated:
            outcome = "liveness violated (stalled)"
        else:
            outcome = "simulation survived"
        rows.append([
            name,
            result.omissions_used,
            result.steps_executed,
            f"{result.committed}/{result.expected_committed}",
            outcome,
        ])
    table_printer(
        "Theorem 3.2 — one omission (NO1) in the weak models vs the strong models",
        ["model", "omissions", "fair interactions afterwards", "committed", "outcome"],
        rows,
    )
    outcomes = dict(results)
    # The paper's dichotomy: I1/I2 (and T1) cannot absorb even one omission...
    for weak in ("I1", "I2", "T1"):
        assert outcomes[weak].liveness_violated or outcomes[weak].safety_violated
    # ...while I3/I4 — with an omission budget of one — shrug it off.
    for strong in ("I3", "I4"):
        assert not outcomes[strong].liveness_violated
        assert not outcomes[strong].safety_violated


@pytest.mark.parametrize("model_name", ["I1", "I2"])
def test_theorem_3_2_individual_models(benchmark, model_name):
    result = benchmark.pedantic(run_no1, args=(model_name,), rounds=1, iterations=1)
    assert result.omissions_used == 1
    assert result.liveness_violated or result.safety_violated
