"""FIG-1: regenerate Figure 1 (the hierarchy of interaction models).

The figure's content is (a) the ten models with their transition relations
and (b) the inclusion edges between them, each justified either because the
weaker model's transition relation is a *special case* of the stronger one's
(under an identification of the detection functions) or because the stronger
model is obtained by *omission avoidance*.

The benchmark re-derives every edge mechanically:

* for a special-case edge, it instantiates the identification stated in
  ``repro.interaction.hierarchy`` (e.g. "IO is IT with ``g`` = identity",
  "T2 is T3 with ``h`` = identity") on a probe program and checks that the
  two models' transition relations coincide on all probed state pairs;
* for an omission-avoidance edge, it checks that the two models agree on all
  non-omissive interactions (so a source-correct protocol stays correct on
  the destination's omission-free runs).

The printed table is the textual form of Figure 1.
"""

from __future__ import annotations

import itertools

import pytest

from repro.interaction.hierarchy import (
    HIERARCHY_EDGES,
    OMISSION_AVOIDANCE,
    SPECIAL_CASE,
    hierarchy_graph,
    topological_order,
)
from repro.interaction.models import get_model
from repro.interaction.omissions import NO_OMISSION

#: Probe states: enough to distinguish the component functions.
PROBE_STATES = ("x", "y", "z")


class ProbeProgram:
    """A program whose component functions produce distinguishable outputs.

    The detection functions ``g`` / ``o`` / ``h`` can be pinned to specific
    identifications (identity, equal to ``g``, ...) to realise the
    special-case reductions of Figure 1.
    """

    def __init__(self, g_mode="tag", o_mode="tag", h_mode="tag"):
        self.g_mode = g_mode
        self.o_mode = o_mode
        self.h_mode = h_mode

    # one-way interface ------------------------------------------------------------
    def g(self, starter):
        return starter if self.g_mode == "identity" else ("g", starter)

    def f(self, starter, reactor):
        return ("f", starter, reactor)

    def on_starter_omission(self, starter):
        if self.o_mode == "identity":
            return starter
        if self.o_mode == "g":
            return self.g(starter)
        return ("o", starter)

    def on_reactor_omission(self, reactor):
        if self.h_mode == "identity":
            return reactor
        if self.h_mode == "g":
            return self.g(reactor)
        return ("h", reactor)

    # two-way interface (fs ignores the reactor, i.e. the one-way special case) -----
    def fs(self, starter, reactor):
        return self.g(starter)

    def fr(self, starter, reactor):
        return self.f(starter, reactor)


#: For each special-case edge: the identification of detection functions that
#: realises the reduction (arguments for ProbeProgram).
SPECIAL_CASE_IDENTIFICATIONS = {
    ("IO", "IT"): dict(g_mode="identity"),
    ("IT", "TW"): dict(),
    ("T1", "T2"): dict(o_mode="identity", h_mode="identity"),
    ("T2", "T3"): dict(h_mode="identity"),
    ("I1", "I3"): dict(h_mode="identity"),
    ("I2", "I3"): dict(h_mode="g"),
    ("I2", "I4"): dict(o_mode="g"),
    ("I3", "T3"): dict(o_mode="g"),
}


def _relation(model, program, starter, reactor):
    return model.transition_relation(program, starter, reactor)


def check_special_case(source_name: str, destination_name: str):
    """The destination's relation (under the identification) equals the source's."""
    identification = SPECIAL_CASE_IDENTIFICATIONS[(source_name, destination_name)]
    program = ProbeProgram(**identification)
    source = get_model(source_name)
    destination = get_model(destination_name)
    for starter, reactor in itertools.product(PROBE_STATES, repeat=2):
        source_relation = _relation(source, program, starter, reactor)
        destination_relation = _relation(destination, program, starter, reactor)
        if not destination_relation <= source_relation | destination_relation:
            return False, "relation mismatch"
        # The inclusion that matters: every outcome the destination model can
        # produce under the identification is an admissible source outcome, or
        # conversely the source relation embeds into the destination's.  For
        # the identifications above the two relations coincide exactly.
        if source_relation != destination_relation:
            return False, (
                f"relations differ on ({starter}, {reactor}): "
                f"{sorted(map(repr, source_relation))} vs "
                f"{sorted(map(repr, destination_relation))}"
            )
    return True, f"relations coincide on {len(PROBE_STATES) ** 2} state pairs"


def check_omission_avoidance(source_name: str, destination_name: str):
    """Source and destination agree on every non-omissive interaction."""
    program = ProbeProgram()
    source = get_model(source_name)
    destination = get_model(destination_name)
    for starter, reactor in itertools.product(PROBE_STATES, repeat=2):
        source_outcome = source.apply(program, starter, reactor, NO_OMISSION)
        destination_outcome = destination.apply(program, starter, reactor, NO_OMISSION)
        if source_outcome != destination_outcome:
            return False, f"non-omissive outcomes differ on ({starter}, {reactor})"
    return True, f"non-omissive outcomes agree on {len(PROBE_STATES) ** 2} state pairs"


def build_figure_1():
    """Check every Figure 1 edge and return the table rows plus a global verdict."""
    rows = []
    all_ok = True
    for source, destination, justification in HIERARCHY_EDGES:
        if justification == SPECIAL_CASE:
            ok, detail = check_special_case(source, destination)
        else:
            ok, detail = check_omission_avoidance(source, destination)
        all_ok = all_ok and ok
        rows.append(
            [f"{source} -> {destination}", justification, "ok" if ok else "FAIL", detail]
        )
    return rows, all_ok


def test_figure_1_hierarchy(benchmark, table_printer):
    rows, all_ok = benchmark.pedantic(build_figure_1, rounds=1, iterations=1)
    table_printer(
        "Figure 1 — hierarchy of interaction models (weaker -> stronger)",
        ["edge", "justification", "check", "detail"],
        rows,
    )
    table_printer(
        "Figure 1 — weakest-to-strongest order",
        ["order"],
        [[" -> ".join(topological_order())]],
    )
    assert all_ok, "every Figure 1 edge must be mechanically verified"
    graph = hierarchy_graph()
    assert graph.number_of_nodes() == 10
    assert graph.number_of_edges() == len(HIERARCHY_EDGES)
