"""COR-1: with Theta(|Q_P| log n) bits per agent, every TW protocol runs on IT.

The benchmark plugs ``o = 0`` into ``SKnO`` and runs it on the non-omissive
Immediate Transmission model across population sizes, reporting convergence
and the observed per-agent memory against the Theta(|Q_P| log n) bound: the
per-agent footprint should grow (at most) logarithmically with ``n`` while
the simulation stays verified.
"""

from __future__ import annotations

import pytest

from repro.analysis.statistics import growth_ratio
from repro.core.memory import max_bits_per_agent, skno_state_bound_bits
from repro.core.skno import SKnOSimulator
from repro.core.verification import verify_simulation
from repro.engine.convergence import run_until_stable
from repro.engine.engine import SimulationEngine
from repro.engine.fastpath import AgentCountPredicate
from repro.interaction.models import get_model
from repro.protocols.catalog.leader_election import LeaderElectionProtocol
from repro.scheduling.scheduler import RandomScheduler

MAX_STEPS = 400_000
WINDOW = 200


def run_it_leader_election(n: int, seed: int = 0):
    protocol = LeaderElectionProtocol()
    simulator = SKnOSimulator(protocol, omission_bound=0)
    config = simulator.initial_configuration(protocol.initial_configuration(n))
    engine = SimulationEngine(simulator, get_model("IT"), RandomScheduler(n, seed=seed))
    # Incremental predicate: O(1) per step instead of an O(n) rescan.  The
    # full trace is still recorded — verify_simulation needs it.
    predicate = AgentCountPredicate(lambda s: simulator.project(s) == "L", target=1)
    outcome = run_until_stable(engine, config, predicate, max_steps=MAX_STEPS,
                               stability_window=WINDOW)
    report = verify_simulation(simulator, outcome.trace)
    observed_bits = max_bits_per_agent([outcome.final_configuration])
    return {
        "n": n,
        "converged": outcome.converged,
        "steps": outcome.steps_to_convergence,
        "pairs": report.matched_pairs,
        "verified": report.ok,
        "memory_bits": observed_bits,
        "memory_bound": skno_state_bound_bits(protocol, n, 0),
    }


@pytest.mark.parametrize("n", [4, 8, 16])
def test_corollary_1_it_simulation(benchmark, table_printer, n):
    row = benchmark.pedantic(run_it_leader_election, args=(n,), kwargs={"seed": n},
                             rounds=1, iterations=1)
    table_printer(
        f"Corollary 1 — SKnO(o=0) on IT, leader election, n={n}",
        ["n", "converged", "steps", "simulated pairs", "verified",
         "memory bits/agent", "Theta(|Q| log n) bound"],
        [[row["n"], row["converged"], row["steps"], row["pairs"], row["verified"],
          row["memory_bits"], row["memory_bound"]]],
    )
    assert row["converged"]
    assert row["verified"]


def test_corollary_1_memory_growth_shape(benchmark, table_printer):
    """Per-agent memory grows sub-linearly (logarithmically) in n."""

    def sweep():
        return [run_it_leader_election(n, seed=n) for n in (4, 8, 16, 32)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table_printer(
        "Corollary 1 — per-agent memory versus population size (IT, leader election)",
        ["n", "steps", "memory bits/agent", "Theta bound"],
        [[row["n"], row["steps"], row["memory_bits"], row["memory_bound"]] for row in rows],
    )
    assert all(row["converged"] and row["verified"] for row in rows)
    memories = [row["memory_bits"] for row in rows]
    sizes = [row["n"] for row in rows]
    # Shape check: the per-agent footprint must grow much more slowly than the
    # population itself (n grows 8x across the sweep; the footprint must not).
    assert memories[-1] <= memories[0] * (sizes[-1] / sizes[0]) / 2
    assert max(memories) < 40 * max(
        skno_state_bound_bits(LeaderElectionProtocol(), n, 0) for n in sizes
    )
