"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure or theorem of the paper (see
DESIGN.md, "Per-experiment index") and prints the corresponding table so the
textual output of ``pytest benchmarks/ --benchmark-only -s`` reads like the
paper's results section.  The timing numbers collected by pytest-benchmark
measure the cost of regenerating each artifact.
"""

from __future__ import annotations

import sys

import pytest

from repro.analysis.reporting import format_table


def emit(title: str, headers, rows) -> None:
    """Print a titled table to stdout (shown with ``pytest -s`` and in EXPERIMENTS.md)."""
    print()
    print(f"== {title} ==")
    print(format_table(headers, rows))
    sys.stdout.flush()


@pytest.fixture
def table_printer():
    """Fixture exposing :func:`emit` to benchmark functions."""
    return emit
