"""Graph-restricted scheduling: vectorized batched draws vs the per-step path.

``GraphScheduler`` was the last scheduler left on the per-step batched-draw
fallback; this benchmark pins what its vectorized
:meth:`~repro.scheduling.graph_scheduler.GraphScheduler.next_interactions`
buys, on the draw itself and end to end.

Two tables:

* **draw rate** — interactions drawn per second, batched (chunks of 256)
  vs the per-step fallback inherited from ``Scheduler``, across the
  standard topologies (ring, star, complete, connected G(n, p)).  Both
  paths produce bitwise-identical streams (pinned by
  ``tests/test_batched_scheduling.py``), so the ratio is pure overhead.
* **engine throughput** — counts-only epidemic runs on a ring topology,
  batched vs ``chunk_size=1`` + per-step fallback, with and without a
  ``BoundedOmissionAdversary`` (the budget-aware batched injection
  protocol on a graph workload).

Usage::

    PYTHONPATH=src python benchmarks/bench_graph_scheduler.py
    PYTHONPATH=src python benchmarks/bench_graph_scheduler.py --quick

Headline guard: batched draws on the largest ring topology must be at
least 1.3x the per-step fallback (typically ~3x; the guard is loose so
shared-CI noise cannot fail an unrelated change).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from repro.adversary.omission import BoundedOmissionAdversary
from repro.analysis.reporting import format_table
from repro.engine.engine import SimulationEngine
from repro.interaction.models import get_model
from repro.protocols.catalog.epidemic import INFORMED, SUSCEPTIBLE, OneWayEpidemicProtocol
from repro.protocols.state import Configuration
from repro.scheduling.graph_scheduler import (
    complete_graph_scheduler,
    random_graph_scheduler,
    ring_scheduler,
    star_scheduler,
)
from repro.scheduling.scheduler import Scheduler

CHUNK = 256


def topologies(sizes):
    for n in sizes:
        yield f"ring(n={n})", lambda n=n: ring_scheduler(n, seed=1)
        yield f"star(n={n})", lambda n=n: star_scheduler(n, seed=1)
    n = min(sizes)
    yield f"complete(n={n})", lambda n=n: complete_graph_scheduler(n, seed=1)
    yield f"gnp(n={n}, p=0.1)", lambda n=n: random_graph_scheduler(n, 0.1, seed=1)


def draw_rate(scheduler, draws: int, batched: bool) -> float:
    if not batched:
        # Shadow the vectorized draw with the base per-step fallback so this
        # measures true per-step draws, as the pre-vectorization engine did.
        scheduler.next_interactions = Scheduler.next_interactions.__get__(scheduler)
    start = time.perf_counter()
    for step in range(0, draws, CHUNK):
        scheduler.next_interactions(step, CHUNK)
    return draws / (time.perf_counter() - start)


def engine_rate(n: int, steps: int, batched: bool, with_adversary: bool) -> float:
    model = get_model("I3")
    scheduler = ring_scheduler(n, seed=1)
    chunk_size = None
    if not batched:
        scheduler.next_interactions = Scheduler.next_interactions.__get__(scheduler)
        chunk_size = 1
    adversary = None
    if with_adversary:
        adversary = BoundedOmissionAdversary(model, max_omissions=64, rate=0.5, seed=1)
    engine = SimulationEngine(OneWayEpidemicProtocol(), model, scheduler,
                              adversary=adversary)
    initial = Configuration([INFORMED] + [SUSCEPTIBLE] * (n - 1))
    start = time.perf_counter()
    engine.execute(initial, steps, trace_policy="counts-only", chunk_size=chunk_size)
    return steps / (time.perf_counter() - start)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes and draw counts (CI smoke test)")
    parser.add_argument("--draws", type=int, default=None,
                        help="draws per measurement (default: 200000, quick: 20000)")
    args = parser.parse_args(argv)

    sizes = [100, 1000] if args.quick else [1000, 10_000]
    draws = args.draws or (20_000 if args.quick else 200_000)

    draw_rows = []
    headline: Optional[float] = None
    for name, factory in topologies(sizes):
        batched = draw_rate(factory(), draws, batched=True)
        per_step = draw_rate(factory(), draws, batched=False)
        speedup = batched / per_step
        if name == f"ring(n={max(sizes)})":
            headline = speedup
        draw_rows.append([name, f"{batched:,.0f}", f"{per_step:,.0f}",
                          f"{speedup:.1f}x"])
    print(format_table(
        ["topology", "batched draws/s", "per-step draws/s", "speedup"], draw_rows))

    n = min(sizes)
    steps = 5_000 if args.quick else 50_000
    engine_rows = []
    for with_adversary in (False, True):
        batched = engine_rate(n, steps, batched=True, with_adversary=with_adversary)
        per_step = engine_rate(n, steps, batched=False, with_adversary=with_adversary)
        engine_rows.append([
            f"ring(n={n})", "yes" if with_adversary else "no", steps,
            f"{batched:,.0f}", f"{per_step:,.0f}", f"{batched / per_step:.1f}x"])
    print()
    print(format_table(
        ["workload", "adversary", "steps", "batched it/s", "per-step it/s",
         "speedup"], engine_rows))

    print()
    print(f"headline: GraphScheduler batched draws are {headline:.1f}x the "
          f"per-step fallback on ring(n={max(sizes)})")
    if headline < 1.3:
        print("FAIL: expected batched graph draws to be at least 1.3x the "
              "per-step fallback", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
