"""THM-4.6: knowledge of n suffices on IO (naming protocol Nn + SID).

The benchmark runs the composed simulator across population sizes and
reports, per run: how many interactions the naming phase takes (until every
agent holds a unique id in 1..n), how many more the simulated workload needs
to stabilise, and whether the end-to-end trace verifies as a simulation.
"""

from __future__ import annotations

import pytest

from repro.core.naming import KnownSizeSimulator
from repro.core.verification import verify_simulation
from repro.engine.convergence import run_until_stable
from repro.engine.engine import SimulationEngine
from repro.engine.fastpath import incremental_stable_output
from repro.interaction.models import IO
from repro.protocols.catalog.majority import ExactMajorityProtocol
from repro.scheduling.scheduler import RandomScheduler

MAX_STEPS = 500_000
WINDOW = 200


def run_known_size_workload(n: int, seed: int = 0):
    protocol = ExactMajorityProtocol()
    simulator = KnownSizeSimulator(protocol, population_size=n)
    count_a = n // 2 + 1
    config = simulator.initial_configuration(
        protocol.initial_configuration(count_a, n - count_a))
    engine = SimulationEngine(simulator, IO, RandomScheduler(n, seed=seed))
    # Incremental predicate: O(1) per step instead of an O(n) rescan.  The
    # full trace is still recorded — verification and the naming-phase scan
    # below both need it.
    predicate = incremental_stable_output(protocol, "A", projection=simulator.project)
    outcome = run_until_stable(engine, config, predicate, max_steps=MAX_STEPS,
                               stability_window=WINDOW)
    report = verify_simulation(simulator, outcome.trace)

    naming_steps = None
    for index, configuration in enumerate(outcome.trace.configurations()):
        if KnownSizeSimulator.naming_complete(configuration):
            naming_steps = index
            break
    ids = KnownSizeSimulator.assigned_ids(outcome.trace.final_configuration)
    return {
        "n": n,
        "converged": outcome.converged,
        "naming_steps": naming_steps,
        "total_steps": outcome.steps_to_convergence,
        "pairs": report.matched_pairs,
        "verified": report.ok,
        "ids_ok": sorted(ids) == list(range(1, n + 1)),
    }


@pytest.mark.parametrize("n", [4, 8, 12])
def test_theorem_4_6_known_size(benchmark, table_printer, n):
    row = benchmark.pedantic(run_known_size_workload, args=(n,), kwargs={"seed": n},
                             rounds=1, iterations=1)
    table_printer(
        f"Theorem 4.6 — Nn + SID on IO, exact majority, n={n}",
        ["n", "converged", "naming interactions", "total interactions",
         "simulated pairs", "ids = 1..n", "verified"],
        [[row["n"], row["converged"], row["naming_steps"], row["total_steps"],
          row["pairs"], row["ids_ok"], row["verified"]]],
    )
    assert row["converged"]
    assert row["verified"]
    assert row["ids_ok"]
    assert row["naming_steps"] is not None


def test_theorem_4_6_naming_cost_grows_with_n(benchmark, table_printer):
    """Shape check: naming needs more interactions for larger populations."""

    def sweep():
        return [run_known_size_workload(n, seed=7 * n) for n in (4, 8, 16)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table_printer(
        "Theorem 4.6 — naming-phase cost versus population size",
        ["n", "naming interactions", "total interactions", "verified"],
        [[row["n"], row["naming_steps"], row["total_steps"], row["verified"]] for row in rows],
    )
    assert all(row["converged"] and row["verified"] and row["ids_ok"] for row in rows)
    naming = [row["naming_steps"] for row in rows]
    assert naming[0] < naming[-1]
