"""THM-4.5: SID simulates every TW protocol on IO given unique IDs.

The benchmark sweeps the population size and two workloads (exact majority
and leader election), runs them through ``SID`` on Immediate Observation,
verifies the simulation and reports the interaction overhead (physical
observations per completed simulated two-way interaction — expected to be a
small constant independent of ``n`` under a fair scheduler) and the
per-agent memory (Theta(log n), from the two stored ids).
"""

from __future__ import annotations

import pytest

from repro.core.memory import max_bits_per_agent, sid_state_bound_bits
from repro.core.sid import SIDSimulator
from repro.core.verification import verify_simulation
from repro.engine.convergence import run_until_stable
from repro.engine.engine import SimulationEngine
from repro.engine.fastpath import AgentCountPredicate, incremental_stable_output
from repro.interaction.models import IO
from repro.protocols.catalog.leader_election import LeaderElectionProtocol
from repro.protocols.catalog.majority import ExactMajorityProtocol
from repro.scheduling.scheduler import RandomScheduler

MAX_STEPS = 400_000
WINDOW = 200


def run_sid_workload(workload: str, n: int, seed: int = 0):
    if workload == "majority":
        protocol = ExactMajorityProtocol()
        count_a = n // 2 + 1
        initial = protocol.initial_configuration(count_a, n - count_a)
    else:
        protocol = LeaderElectionProtocol()
        initial = protocol.initial_configuration(n)

    simulator = SIDSimulator(protocol)
    # Incremental predicates: O(1) per step instead of an O(n) rescan.  The
    # full trace is still recorded — verify_simulation needs it.
    if workload == "majority":
        predicate = incremental_stable_output(protocol, "A", projection=simulator.project)
    else:
        predicate = AgentCountPredicate(lambda s: simulator.project(s) == "L", target=1)
    config = simulator.initial_configuration(initial)
    engine = SimulationEngine(simulator, IO, RandomScheduler(n, seed=seed))
    outcome = run_until_stable(
        engine, config, predicate,
        max_steps=MAX_STEPS, stability_window=WINDOW)
    report = verify_simulation(simulator, outcome.trace)
    return {
        "workload": workload,
        "n": n,
        "converged": outcome.converged,
        "steps": outcome.steps_to_convergence,
        "pairs": report.matched_pairs,
        "overhead": (outcome.steps_executed / report.matched_pairs
                     if report.matched_pairs else float("inf")),
        "verified": report.ok,
        "memory_bits": max_bits_per_agent([outcome.final_configuration]),
        "memory_bound": sid_state_bound_bits(protocol, n),
    }


@pytest.mark.parametrize("n", [4, 8, 16])
def test_theorem_4_5_majority(benchmark, table_printer, n):
    row = benchmark.pedantic(run_sid_workload, args=("majority", n),
                             kwargs={"seed": n}, rounds=1, iterations=1)
    table_printer(
        f"Theorem 4.5 — SID on IO, exact majority, n={n}",
        ["n", "converged", "steps", "simulated pairs", "observations per pair", "verified"],
        [[row["n"], row["converged"], row["steps"], row["pairs"],
          f"{row['overhead']:.1f}", row["verified"]]],
    )
    assert row["converged"]
    assert row["verified"]


@pytest.mark.parametrize("n", [6, 12])
def test_theorem_4_5_leader_election(benchmark, table_printer, n):
    row = benchmark.pedantic(run_sid_workload, args=("leader", n),
                             kwargs={"seed": 100 + n}, rounds=1, iterations=1)
    table_printer(
        f"Theorem 4.5 — SID on IO, leader election, n={n}",
        ["n", "converged", "steps", "simulated pairs", "observations per pair", "verified"],
        [[row["n"], row["converged"], row["steps"], row["pairs"],
          f"{row['overhead']:.1f}", row["verified"]]],
    )
    assert row["converged"]
    assert row["verified"]


def test_theorem_4_5_overhead_stays_bounded(benchmark, table_printer):
    """Shape check: the per-pair observation overhead does not blow up with n."""

    def sweep():
        return [run_sid_workload("majority", n, seed=n) for n in (4, 8, 16)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table_printer(
        "Theorem 4.5 — SID overhead and memory versus population size (exact majority)",
        ["n", "steps", "observations per pair", "memory bits/agent", "Theta(log n) bound"],
        [[row["n"], row["steps"], f"{row['overhead']:.1f}", row["memory_bits"],
          row["memory_bound"]] for row in rows],
    )
    assert all(row["converged"] and row["verified"] for row in rows)
    overheads = [row["overhead"] for row in rows]
    # Under a uniform random scheduler the number of observations needed to
    # complete one simulated interaction grows with n (the right partner must
    # be drawn), but far more slowly than n^2; we pin a generous envelope.
    assert overheads[-1] < overheads[0] * 50
