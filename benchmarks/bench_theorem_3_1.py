"""THM-3.1 / THM-3.3: the Lemma 1 attack (impossibility under omissions).

For each omission bound ``o`` the benchmark builds the Lemma 1 run ``I*``
against ``SKnO(o)`` (presented to the two-way omissive model ``T3`` through
the one-way adapter), executes it, and reports:

* the simulator's FTT (= the number of omissions the attack needs),
* the number of agents that transitioned into the Pairing problem's critical
  state versus the number of producers (the safety bound),
* whether safety was violated.

The expected shape — and what the assertions pin down — is the paper's
claim: FTT omissions always suffice, so every row is a safety violation,
regardless of how large the simulator's announced omission bound is.  The
same data supports Theorem 3.3: since the attack works for every simulator
with FTT >= 2, no gracefully degrading simulator has a threshold above 1.
"""

from __future__ import annotations

import pytest

from repro.adversary.constructions import Lemma1Construction
from repro.core.skno import SKnOSimulator
from repro.interaction.adapters import one_way_as_two_way
from repro.interaction.models import get_model
from repro.protocols.catalog.pairing import PairingProtocol


def run_attack(omission_bound: int):
    protocol = PairingProtocol()
    simulator = one_way_as_two_way(SKnOSimulator(protocol, omission_bound=omission_bound))
    construction = Lemma1Construction(simulator, get_model("T3"), q0="p", q1="c")
    return construction.execute()


def attack_sweep(bounds):
    results = []
    for omission_bound in bounds:
        result = run_attack(omission_bound)
        results.append((omission_bound, result))
    return results


@pytest.mark.parametrize("omission_bound", [1, 2, 3])
def test_lemma_1_attack_single(benchmark, table_printer, omission_bound):
    result = benchmark.pedantic(run_attack, args=(omission_bound,), rounds=1, iterations=1)
    table_printer(
        f"Theorem 3.1 — Lemma 1 attack against SKnO(o={omission_bound}) in T3",
        ["simulator bound o", "FTT", "omissions used", "population",
         "critical transitions", "safety bound", "violated"],
        [[omission_bound, result.ftt, result.omissions_used, result.population,
          result.q1_to_q1_prime_transitions, result.safety_bound,
          "YES" if result.safety_violated else "no"]],
    )
    # Shape of the theorem: the attack needs exactly FTT = 2(o+1) omissions
    # and always breaks safety by at least one extra critical consumer.
    assert result.ftt == 2 * (omission_bound + 1)
    assert result.omissions_used == result.ftt
    assert result.safety_violated
    assert result.q1_to_q1_prime_transitions > result.safety_bound


def test_lemma_1_attack_sweep(benchmark, table_printer):
    """Theorem 3.3: the safety threshold cannot exceed one omission."""
    results = benchmark.pedantic(attack_sweep, args=([1, 2, 3, 4],), rounds=1, iterations=1)
    rows = []
    for omission_bound, result in results:
        rows.append([
            omission_bound,
            result.ftt,
            result.omissions_used,
            result.q1_to_q1_prime_transitions,
            result.safety_bound,
            "YES" if result.safety_violated else "no",
        ])
    table_printer(
        "Theorem 3.3 — graceful degradation sweep (every simulator is fooled by FTT omissions)",
        ["announced bound o", "FTT", "omissions used", "critical transitions",
         "safety bound", "violated"],
        rows,
    )
    assert all(result.safety_violated for _, result in results)
    # The cost of the attack grows linearly with the announced bound: the
    # simulator can always be broken, only more slowly.
    ftts = [result.ftt for _, result in results]
    assert ftts == sorted(ftts)
