"""OVH-1: simulation overhead across all simulators (derived comparison).

The paper proves feasibility; this benchmark quantifies the price, comparing
all simulators on the same workload and population:

* FTT (Definition 7): the minimum number of interactions needed to simulate
  one two-way interaction in a two-agent system;
* measured interactions per completed simulated interaction under a fair
  random scheduler;
* per-agent memory.

Expected shape: the TW baseline costs exactly 1 interaction per interaction;
``SKnO`` costs a factor growing with ``o + 1``; ``SID`` and ``Nn + SID`` pay a
constant-factor locking overhead plus (for ``Nn``) a one-off naming phase.
"""

from __future__ import annotations

import pytest

from repro.adversary.ftt import fastest_transition_time
from repro.core.memory import max_bits_per_agent
from repro.core.naming import KnownSizeSimulator
from repro.core.sid import SIDSimulator
from repro.core.skno import SKnOSimulator
from repro.core.trivial import TrivialTwoWaySimulator
from repro.core.verification import verify_simulation
from repro.engine.convergence import run_until_stable
from repro.engine.engine import SimulationEngine
from repro.engine.fastpath import incremental_stable_output
from repro.interaction.models import IO, TW, get_model
from repro.protocols.catalog.majority import ExactMajorityProtocol
from repro.protocols.state import Configuration
from repro.scheduling.scheduler import RandomScheduler

N = 8
MAX_STEPS = 400_000
WINDOW = 200


def build_simulators(protocol):
    return [
        ("TW baseline", TrivialTwoWaySimulator(protocol), TW, {}),
        ("SKnO o=0 (IT)", SKnOSimulator(protocol, omission_bound=0), get_model("IT"), {}),
        ("SKnO o=1 (I3)", SKnOSimulator(protocol, omission_bound=1), get_model("I3"), {}),
        ("SKnO o=2 (I3)", SKnOSimulator(protocol, omission_bound=2), get_model("I3"), {}),
        ("SID (IO)", SIDSimulator(protocol), IO, {}),
        ("Nn+SID (IO)", KnownSizeSimulator(protocol, population_size=N), IO, {}),
    ]


def measure(name, simulator, model, protocol, seed=0):
    count_a = N // 2 + 1
    p_config = protocol.initial_configuration(count_a, N - count_a)
    config = simulator.initial_configuration(p_config)
    engine = SimulationEngine(simulator, model, RandomScheduler(N, seed=seed))
    # Incremental predicate: O(1) per step instead of an O(n) rescan.  The
    # full trace is still recorded — verify_simulation needs it.
    predicate = incremental_stable_output(protocol, "A", projection=simulator.project)
    outcome = run_until_stable(engine, config, predicate, max_steps=MAX_STEPS,
                               stability_window=WINDOW)
    report = verify_simulation(simulator, outcome.trace)

    two_agent_config = Configuration(
        [
            simulator.initial_state("A", **({"agent_id": 0} if isinstance(simulator, SIDSimulator) else {})),
            simulator.initial_state("B", **({"agent_id": 1} if isinstance(simulator, SIDSimulator) else {})),
        ]
    ) if not isinstance(simulator, KnownSizeSimulator) else None
    if two_agent_config is not None:
        ftt = fastest_transition_time(simulator, model, two_agent_config).ftt
    else:
        ftt = None  # the naming phase depends on n, FTT is not defined the same way

    return {
        "name": name,
        "model": model.name,
        "converged": outcome.converged,
        "steps": outcome.steps_to_convergence,
        "pairs": report.matched_pairs,
        "overhead": (outcome.steps_executed / report.matched_pairs
                     if report.matched_pairs else float("inf")),
        "ftt": ftt,
        "verified": report.ok,
        "memory": max_bits_per_agent([outcome.final_configuration]),
    }


def full_comparison():
    protocol = ExactMajorityProtocol()
    return [measure(name, simulator, model, protocol, seed=index)
            for index, (name, simulator, model, _) in enumerate(build_simulators(protocol))]


def test_simulation_overhead_comparison(benchmark, table_printer):
    rows = benchmark.pedantic(full_comparison, rounds=1, iterations=1)
    table_printer(
        f"Simulation overhead — exact majority, n={N}, all simulators",
        ["simulator", "model", "converged", "steps", "simulated pairs",
         "interactions per pair", "FTT", "memory bits/agent", "verified"],
        [[row["name"], row["model"], row["converged"], row["steps"], row["pairs"],
          f"{row['overhead']:.1f}", row["ftt"] if row["ftt"] is not None else "-",
          row["memory"], row["verified"]] for row in rows],
    )
    by_name = {row["name"]: row for row in rows}
    assert all(row["converged"] and row["verified"] for row in rows)

    # The baseline is exactly one interaction per simulated interaction.
    assert by_name["TW baseline"]["overhead"] == pytest.approx(1.0)
    assert by_name["TW baseline"]["ftt"] == 1

    # FTT shape: SKnO needs 2(o+1) interactions, SID needs 3 observations.
    assert by_name["SKnO o=0 (IT)"]["ftt"] == 2
    assert by_name["SKnO o=1 (I3)"]["ftt"] == 4
    assert by_name["SKnO o=2 (I3)"]["ftt"] == 6
    assert by_name["SID (IO)"]["ftt"] == 3

    # Every simulator pays a real overhead over the baseline.
    for name, row in by_name.items():
        if name != "TW baseline":
            assert row["overhead"] > 1.5

    # SKnO's overhead grows with the omission bound.
    assert (by_name["SKnO o=0 (IT)"]["overhead"]
            < by_name["SKnO o=2 (I3)"]["overhead"])
