"""THM-4.1: SKnO simulates every TW protocol on I3/I4 given an omission bound.

The benchmark sweeps the population size ``n`` and the omission bound ``o``,
runs the exact-majority workload through ``SKnO`` under a bounded omission
adversary, verifies the simulation (Definitions 3 and 4), and reports:

* interactions until the simulated output stabilises,
* physical interactions per completed simulated two-way interaction (the
  simulation overhead — expected to grow roughly linearly with ``o + 1``),
* the maximum per-agent memory observed, against the Theta(log n |Q_P| (o+1))
  bound.
"""

from __future__ import annotations

import pytest

from repro.adversary.omission import BoundedOmissionAdversary
from repro.core.memory import max_bits_per_agent, skno_state_bound_bits
from repro.core.skno import SKnOSimulator
from repro.core.verification import verify_simulation
from repro.engine.convergence import run_until_stable
from repro.engine.engine import SimulationEngine
from repro.engine.fastpath import incremental_stable_output
from repro.interaction.models import get_model
from repro.protocols.catalog.majority import ExactMajorityProtocol
from repro.scheduling.scheduler import RandomScheduler

MAX_STEPS = 400_000
WINDOW = 200


def run_skno_workload(n: int, omission_bound: int, variant: str = "I3", seed: int = 0):
    protocol = ExactMajorityProtocol()
    simulator = SKnOSimulator(protocol, omission_bound=omission_bound, variant=variant)
    count_a = n // 2 + 1
    count_b = n - count_a
    config = simulator.initial_configuration(protocol.initial_configuration(count_a, count_b))
    model = get_model(variant)
    adversary = (
        BoundedOmissionAdversary(model, max_omissions=omission_bound, seed=seed)
        if omission_bound > 0
        else None
    )
    engine = SimulationEngine(simulator, model, RandomScheduler(n, seed=seed), adversary=adversary)
    # Incremental predicate: O(1) per step instead of an O(n) rescan.  The
    # full trace is still recorded — verify_simulation needs it.
    predicate = incremental_stable_output(protocol, "A", projection=simulator.project)
    outcome = run_until_stable(engine, config, predicate, max_steps=MAX_STEPS,
                               stability_window=WINDOW)
    report = verify_simulation(simulator, outcome.trace)
    memory = max_bits_per_agent([outcome.final_configuration])
    bound = skno_state_bound_bits(protocol, n, omission_bound)
    return {
        "n": n,
        "o": omission_bound,
        "variant": variant,
        "converged": outcome.converged,
        "steps": outcome.steps_to_convergence,
        "omissions": outcome.omissions,
        "pairs": report.matched_pairs,
        "overhead": (outcome.steps_executed / report.matched_pairs
                     if report.matched_pairs else float("inf")),
        "verified": report.ok,
        "memory_bits": memory,
        "memory_bound": bound,
    }


@pytest.mark.parametrize("omission_bound", [0, 1, 2])
def test_theorem_4_1_i3_omission_sweep(benchmark, table_printer, omission_bound):
    row = benchmark.pedantic(
        run_skno_workload, args=(8, omission_bound), kwargs={"seed": omission_bound},
        rounds=1, iterations=1)
    table_printer(
        f"Theorem 4.1 — SKnO on I3, n=8, o={omission_bound} (exact majority)",
        ["n", "o", "converged", "steps", "omissions", "simulated pairs",
         "interactions per pair", "verified"],
        [[row["n"], row["o"], row["converged"], row["steps"], row["omissions"],
          row["pairs"], f"{row['overhead']:.1f}", row["verified"]]],
    )
    assert row["converged"]
    assert row["verified"]
    assert row["omissions"] <= omission_bound


@pytest.mark.parametrize("n", [4, 8, 16])
def test_theorem_4_1_i3_population_sweep(benchmark, table_printer, n):
    row = benchmark.pedantic(
        run_skno_workload, args=(n, 1), kwargs={"seed": n}, rounds=1, iterations=1)
    table_printer(
        f"Theorem 4.1 — SKnO on I3, o=1, n={n} (exact majority)",
        ["n", "o", "converged", "steps", "simulated pairs", "interactions per pair",
         "memory bits/agent", "Theta bound"],
        [[row["n"], row["o"], row["converged"], row["steps"], row["pairs"],
          f"{row['overhead']:.1f}", row["memory_bits"], row["memory_bound"]]],
    )
    assert row["converged"]
    assert row["verified"]


def test_theorem_4_1_i4_variant(benchmark, table_printer):
    row = benchmark.pedantic(
        run_skno_workload, args=(8, 2), kwargs={"variant": "I4", "seed": 3},
        rounds=1, iterations=1)
    table_printer(
        "Theorem 4.1 — SKnO symmetric variant on I4, n=8, o=2 (exact majority)",
        ["n", "o", "model", "converged", "steps", "omissions", "verified"],
        [[row["n"], row["o"], row["variant"], row["converged"], row["steps"],
          row["omissions"], row["verified"]]],
    )
    assert row["converged"]
    assert row["verified"]


def test_theorem_4_1_overhead_grows_with_omission_bound(benchmark, table_printer):
    """Shape check: the per-pair interaction overhead grows with o (token runs lengthen)."""

    def sweep():
        return [run_skno_workload(6, o, seed=10 + o) for o in (0, 1, 2, 3)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table_printer(
        "Theorem 4.1 — simulation overhead versus omission bound (n=6, exact majority)",
        ["o", "steps to stabilise", "simulated pairs", "interactions per pair",
         "memory bits/agent", "Theta bound"],
        [[row["o"], row["steps"], row["pairs"], f"{row['overhead']:.1f}",
          row["memory_bits"], row["memory_bound"]] for row in rows],
    )
    assert all(row["converged"] and row["verified"] for row in rows)
    overheads = [row["overhead"] for row in rows]
    # Each extra tolerated omission lengthens every token run by one, so the
    # cost per simulated interaction must increase monotonically (the factor
    # is roughly (o+1), we only pin the direction).
    assert overheads[0] < overheads[-1]
    bounds = [row["memory_bound"] for row in rows]
    assert bounds == sorted(bounds)
