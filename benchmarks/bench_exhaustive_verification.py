"""ABL-1 (ablation): exhaustive verification of the design's key claims at small scale.

Random schedules (the other benchmarks) sample the space of executions; this
benchmark enumerates it.  For populations small enough to explore completely
it turns three claims into checked-by-enumeration facts:

* Theorem 4.1 safety: across *every* schedule and *every* placement of at
  most ``o`` omissions, ``SKnO(o)`` never lets the simulated Pairing protocol
  exceed its safety bound (two agents, o ∈ {0, 1, 2}).
* Theorem 4.1 / Corollary 1 liveness under global fairness: from every
  reachable configuration of the two-agent ``SKnO`` system a completed
  simulated interaction remains reachable, and the completed set is closed —
  which, under global fairness, implies stabilisation.
* The same stabilisation property for the simulated workloads run directly
  on TW (the ground truth the simulators are compared against).

The ablation also quantifies the state-space cost of fault tolerance: the
number of reachable simulator configurations grows sharply with the omission
bound, which is the space/overhead price Theorem 4.1 pays for resilience.
"""

from __future__ import annotations

import pytest

from repro.analysis.reachability import check_invariant, check_stabilisation, explore
from repro.core.skno import SKnOSimulator
from repro.core.sid import SIDSimulator
from repro.core.trivial import TrivialTwoWaySimulator
from repro.interaction.models import IO, TW, get_model
from repro.protocols.catalog.leader_election import LEADER, LeaderElectionProtocol
from repro.protocols.catalog.pairing import PairingProtocol
from repro.protocols.state import Configuration


def exhaustive_skno_rows(bounds):
    protocol = PairingProtocol()
    rows = []
    for omission_bound in bounds:
        simulator = SKnOSimulator(protocol, omission_bound=omission_bound)
        initial = Configuration(
            [simulator.initial_state("p"), simulator.initial_state("c")])
        model = get_model("I3")
        reach = explore(simulator, model, initial, omission_budget=omission_bound,
                        max_configurations=100_000)
        safety = check_invariant(
            simulator, model, initial,
            invariant=lambda c: c.count("cs") <= 1,
            omission_budget=omission_bound,
            projection=simulator.project,
            max_configurations=100_000,
        )
        liveness = check_stabilisation(
            simulator, model, initial,
            target=lambda c: c.count("cs") == 1,
            projection=simulator.project,
            max_configurations=100_000,
        )
        rows.append({
            "o": omission_bound,
            "configurations": reach.configuration_count,
            "safety": safety.holds,
            "stabilises": liveness.stabilises,
        })
    return rows


def test_exhaustive_skno_two_agents(benchmark, table_printer):
    rows = benchmark.pedantic(exhaustive_skno_rows, args=([0, 1, 2],), rounds=1, iterations=1)
    table_printer(
        "Ablation — exhaustive verification of SKnO on I3 (2 agents: one producer, one consumer)",
        ["omission bound o", "reachable configurations", "Pairing safety (all schedules)",
         "stabilises under GF"],
        [[row["o"], row["configurations"], row["safety"], row["stabilises"]] for row in rows],
    )
    assert all(row["safety"] for row in rows)
    assert all(row["stabilises"] for row in rows)
    # The price of fault tolerance: the reachable state space grows with o.
    sizes = [row["configurations"] for row in rows]
    assert sizes == sorted(sizes) and sizes[0] < sizes[-1]


def exhaustive_sid_row():
    protocol = PairingProtocol()
    simulator = SIDSimulator(protocol)
    initial = simulator.initial_configuration(Configuration(["p", "c", "c"]))
    safety = check_invariant(
        simulator, IO, initial,
        invariant=lambda c: c.count("cs") <= 1,
        projection=simulator.project,
        max_configurations=200_000,
    )
    liveness = check_stabilisation(
        simulator, IO, initial,
        target=lambda c: c.count("cs") == 1,
        projection=simulator.project,
        max_configurations=200_000,
    )
    return safety, liveness


def test_exhaustive_sid_three_agents(benchmark, table_printer):
    safety, liveness = benchmark.pedantic(exhaustive_sid_row, rounds=1, iterations=1)
    table_printer(
        "Ablation — exhaustive verification of SID on IO (3 agents: 1 producer, 2 consumers)",
        ["reachable configurations", "Pairing safety (all schedules)", "stabilises under GF"],
        [[safety.configurations_checked, safety.holds, liveness.stabilises]],
    )
    assert safety.holds
    assert liveness.stabilises


def exhaustive_tw_rows():
    rows = []
    pairing = PairingProtocol()
    program = TrivialTwoWaySimulator(pairing)
    safety = check_invariant(
        program, TW, Configuration(["c", "c", "p", "p"]),
        invariant=lambda c: c.count("cs") <= 2,
    )
    liveness = check_stabilisation(
        program, TW, Configuration(["c", "c", "p", "p"]),
        target=lambda c: c.count("cs") == 2,
    )
    rows.append(("pairing (2c+2p)", safety.configurations_checked, safety.holds,
                 liveness.stabilises))

    leader = LeaderElectionProtocol()
    program = TrivialTwoWaySimulator(leader)
    safety = check_invariant(
        program, TW, Configuration([LEADER] * 5),
        invariant=lambda c: 1 <= c.count(LEADER) <= 5,
    )
    liveness = check_stabilisation(
        program, TW, Configuration([LEADER] * 5),
        target=lambda c: c.count(LEADER) == 1,
    )
    rows.append(("leader election (n=5)", safety.configurations_checked, safety.holds,
                 liveness.stabilises))
    return rows


def test_exhaustive_tw_ground_truth(benchmark, table_printer):
    rows = benchmark.pedantic(exhaustive_tw_rows, rounds=1, iterations=1)
    table_printer(
        "Ablation — exhaustive verification of the TW ground truth",
        ["workload", "reachable configurations", "safety", "stabilises under GF"],
        rows,
    )
    assert all(safe and live for _, _, safe, live in rows)
