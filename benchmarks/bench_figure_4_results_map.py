"""FIG-4: regenerate the map of results (possibility / impossibility per model × assumption).

The benchmark prints the Figure 4 matrix and re-derives its empirically
checkable cells from scratch:

* every *possible* cell marked for empirical checking is validated by running
  the corresponding simulator on a small workload and verifying the
  simulation (Theorems 4.1, 4.5, 4.6 and Corollary 1);
* every *impossible* cell marked for empirical checking is validated by
  running the corresponding attack (the Lemma 1 construction for
  Theorem 3.1 cells, the NO1 single-omission attack for Theorem 3.2 cells)
  and observing the predicted safety or liveness failure.

Every positive cell is checked under **two interaction topologies**: the
complete graph (the paper's model — a uniform random scheduler) and a ring
interaction graph (:func:`repro.scheduling.graph_scheduler.ring_scheduler`).
The ``SKnO`` and ``SID`` simulators are topology-agnostic — they only
consume a stream of admissible interactions — so those possibility results
must survive the restriction to any connected graph; the ``graph (ring)``
column shows that they do.  The knowledge-of-``n`` cells are the exception,
*by construction*: the naming protocol ``Nn`` assigns ids through
same-id collisions, which assumes any two agents can eventually meet.  On
a ring it deadlocks whenever the provisional ids reach a configuration
with no two equal ids adjacent (e.g. ids ``1,2,3,1,2`` around a 5-ring:
no enabled interaction changes any state, so global fairness cannot
rescue it).  Those cells are therefore checked on the complete graph only
and report ``n/a`` in the graph column.  Negative cells are attack
replays with scripted interaction sequences, where a scheduler family
does not apply.

The assertion is that the empirical verdicts agree with the paper's map on
every checked cell, under both topologies.
"""

from __future__ import annotations

import pytest

from repro.adversary.constructions import Lemma1Construction, no1_liveness_attack
from repro.adversary.omission import BoundedOmissionAdversary
from repro.analysis.reporting import format_results_map
from repro.analysis.results_map import (
    Feasibility,
    KNOWLEDGE_OF_N,
    KNOWLEDGE_OF_OMISSIONS,
    INFINITE_MEMORY,
    UNIQUE_IDS,
    results_map,
)
from repro.core.naming import KnownSizeSimulator
from repro.core.sid import SIDSimulator
from repro.core.skno import SKnOSimulator
from repro.core.verification import verify_simulation
from repro.engine.convergence import run_until_stable
from repro.engine.engine import SimulationEngine
from repro.engine.fastpath import AgentCountPredicate
from repro.interaction.adapters import one_way_as_two_way
from repro.interaction.models import IO, get_model
from repro.protocols.catalog.pairing import PairingProtocol
from repro.protocols.state import Configuration
from repro.scheduling.graph_scheduler import ring_scheduler
from repro.scheduling.scheduler import RandomScheduler

MAX_STEPS = 150_000
WINDOW = 200

#: Interaction topologies every positive cell is re-checked under:
#: ``factory(n, seed) -> scheduler``.
TOPOLOGIES = {
    "complete": lambda n, seed: RandomScheduler(n, seed=seed),
    "ring": ring_scheduler,
}


def _check_simulation_possible(simulator, model, omission_budget=0, seed=0,
                               topology="complete"):
    """Run the Pairing workload through a simulator and verify it end to end."""
    protocol = simulator.protocol
    p_config = Configuration(["c", "c", "p", "p", "p"])
    if isinstance(simulator, KnownSizeSimulator):
        config = simulator.initial_configuration(p_config)
    elif isinstance(simulator, SIDSimulator):
        config = simulator.initial_configuration(p_config)
    else:
        config = simulator.initial_configuration(p_config)
    adversary = (
        BoundedOmissionAdversary(model, max_omissions=omission_budget, seed=seed)
        if omission_budget > 0 and model.allows_omissions
        else None
    )
    scheduler = TOPOLOGIES[topology](len(config), seed)
    engine = SimulationEngine(simulator, model, scheduler, adversary=adversary)
    expected_critical = min(p_config.count("c"), p_config.count("p"))
    # Incremental predicate: O(1) per step instead of an O(n) projection
    # rescan.  The full trace is still recorded — verify_simulation needs it.
    predicate = AgentCountPredicate(
        lambda s: simulator.project(s) == "cs", target=expected_critical)
    outcome = run_until_stable(engine, config, predicate, max_steps=MAX_STEPS,
                               stability_window=WINDOW)
    report = verify_simulation(simulator, outcome.trace)
    return outcome.converged and report.ok


def _check_simulation_impossible_lemma1(omission_bound=1):
    protocol = PairingProtocol()
    simulator = one_way_as_two_way(SKnOSimulator(protocol, omission_bound=omission_bound))
    result = Lemma1Construction(simulator, get_model("T3"), q0="p", q1="c").execute()
    return result.safety_violated


def _check_simulation_impossible_no1(model_name):
    protocol = PairingProtocol()
    simulator = SKnOSimulator(protocol, omission_bound=1)
    program = one_way_as_two_way(simulator) if model_name == "T1" else simulator
    result = no1_liveness_attack(
        program, model_name, target_state="cs", expected_committed=1,
        initial_p_configuration=Configuration(["p", "c"]), safety_bound=1,
        max_steps=25_000)
    return result.liveness_violated or result.safety_violated


def _check_positive_on_all_topologies(make_simulator, model, omission_budget=0, seed=0,
                                      topologies=tuple(TOPOLOGIES)):
    """Verdicts of one positive cell per topology (``{topology: bool}``).

    ``topologies`` restricts the check for constructions that assume the
    complete interaction graph (the knowledge-of-``n`` naming phase; see
    the module docstring).
    """
    return {
        topology: _check_simulation_possible(
            make_simulator(), model, omission_budget=omission_budget, seed=seed,
            topology=topology)
        for topology in topologies
    }


def empirical_cells():
    """Run all empirical checks and return {(model, assumption): verdict}.

    Positive cells map to ``{topology: bool}`` dicts (one verdict per
    interaction topology), negative cells to a plain bool (attacks replay
    scripted interaction sequences; topologies do not apply).
    """
    protocol = PairingProtocol()
    verdicts = {}

    # Positive cells: knowledge of the omission bound (Theorem 4.1 / Corollary 1).
    verdicts[("I3", KNOWLEDGE_OF_OMISSIONS)] = _check_positive_on_all_topologies(
        lambda: SKnOSimulator(protocol, omission_bound=1), get_model("I3"),
        omission_budget=1, seed=1)
    verdicts[("I4", KNOWLEDGE_OF_OMISSIONS)] = _check_positive_on_all_topologies(
        lambda: SKnOSimulator(protocol, omission_bound=1, variant="I4"), get_model("I4"),
        omission_budget=1, seed=2)
    verdicts[("IT", KNOWLEDGE_OF_OMISSIONS)] = _check_positive_on_all_topologies(
        lambda: SKnOSimulator(protocol, omission_bound=0), get_model("IT"), seed=3)
    verdicts[("IT", INFINITE_MEMORY)] = verdicts[("IT", KNOWLEDGE_OF_OMISSIONS)]
    verdicts[("T3", KNOWLEDGE_OF_OMISSIONS)] = _check_positive_on_all_topologies(
        lambda: one_way_as_two_way(SKnOSimulator(protocol, omission_bound=1)),
        get_model("T3"), omission_budget=1, seed=4)

    # Positive cells: unique IDs and knowledge of n (Theorems 4.5, 4.6).
    verdicts[("IO", UNIQUE_IDS)] = _check_positive_on_all_topologies(
        lambda: SIDSimulator(protocol), IO, seed=5)
    verdicts[("IT", UNIQUE_IDS)] = _check_positive_on_all_topologies(
        lambda: SIDSimulator(protocol), get_model("IT"), seed=6)
    # Complete graph only: the Nn naming phase deadlocks on sparse
    # topologies (see the module docstring).
    verdicts[("IO", KNOWLEDGE_OF_N)] = _check_positive_on_all_topologies(
        lambda: KnownSizeSimulator(protocol, population_size=5), IO, seed=7,
        topologies=("complete",))
    verdicts[("IT", KNOWLEDGE_OF_N)] = _check_positive_on_all_topologies(
        lambda: KnownSizeSimulator(protocol, population_size=5), get_model("IT"), seed=8,
        topologies=("complete",))

    # Negative cells: Theorem 3.1 (Lemma 1 attack) and Theorem 3.2 (NO1 attack).
    lemma1 = _check_simulation_impossible_lemma1()
    verdicts[("T3", INFINITE_MEMORY)] = lemma1
    verdicts[("I3", INFINITE_MEMORY)] = lemma1
    for model_name in ("I1", "I2", "T1"):
        broken = _check_simulation_impossible_no1(model_name)
        verdicts[(model_name, INFINITE_MEMORY)] = broken
        verdicts[(model_name, KNOWLEDGE_OF_OMISSIONS)] = broken
    return verdicts


def test_figure_4_results_map(benchmark, table_printer):
    verdicts = benchmark.pedantic(empirical_cells, rounds=1, iterations=1)
    cells = results_map()

    overrides = {}
    rows = []
    mismatches = []
    for (model, assumption), verdict in sorted(verdicts.items()):
        cell = cells[(model, assumption)]
        if cell.feasibility is Feasibility.POSSIBLE:
            agrees = all(verdict.values())
            meaning = ("simulation verified" if agrees
                       else "simulation FAILED")
            if "ring" not in verdict:
                graph = "n/a (Nn needs complete graph)"
            else:
                graph = "verified" if verdict["ring"] else "FAILED"
        elif cell.feasibility is Feasibility.IMPOSSIBLE:
            agrees = verdict
            meaning = "attack breaks simulator" if verdict else "attack FAILED to break"
            graph = "-"
        else:
            agrees = True
            meaning = "not checked"
            graph = "-"
        overrides[(model, assumption)] = cell.label() + ("+" if agrees else "!")
        rows.append([model, assumption, cell.feasibility.value, cell.source, meaning,
                     graph, "agree" if agrees else "MISMATCH"])
        if not agrees:
            mismatches.append((model, assumption))

    table_printer(
        "Figure 4 — empirical checks of the map of results",
        ["model", "assumption", "paper verdict", "source", "empirical outcome",
         "graph (ring)", "status"],
        rows,
    )
    print()
    print("Figure 4 — map of results (YES/NO/?; '*' = cell backed by an empirical check,")
    print("           '+' = the empirical check agrees with the paper):")
    print(format_results_map(overrides))

    assert not mismatches, f"empirical verdicts disagree with Figure 4: {mismatches}"
    assert len(rows) >= 15, "the benchmark must check a substantial part of the map"
